"""The DReAMSim simulation driver.

Wires the event kernel, the resource information manager, the scheduler and
the metric accumulators into the run loop of the original's ``DreamSim``
class (``RunScheduler`` + ``MakeReport``):

* task arrivals are fed lazily from the workload stream (the *job submission
  manager*), one pending arrival event at a time, so memory stays O(active);
* each arrival is scheduled immediately (the paper's scheduler is invoked
  per arriving task);
* completions release node regions, then re-dispatch suitable suspended
  tasks (the ``TaskCompletionProc`` / suspension-queue protocol of §IV);
* every placement samples the wasted-area accumulators (Eqs. 6–7);
* the end-of-run :class:`~repro.metrics.table1.MetricsReport` is Table I.

Determinism: identical (nodes, configs, arrival stream, mode, policy) inputs
replay identically — the kernel breaks event ties by insertion order and all
randomness lives in the workload generators.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.core.base import Placement, ScheduleOutcome, ScheduleResult
from repro.core.policies import PlacementPolicy
from repro.core.scheduler import DreamScheduler
from repro.metrics.accumulators import RunningStats
from repro.metrics.table1 import MetricsReport, compute_report
from repro.model.config import Configuration
from repro.model.node import Node
from repro.model.task import Task
from repro.resources import create_manager, resolve_backend
from repro.resources.arraycore import ArraySuspensionQueue
from repro.resources.counters import SearchCounters
from repro.resources.invariants import check_invariants
from repro.resources.susqueue import SuspensionQueue
from repro.sim.environment import Environment
from repro.trace.events import (
    COMPLETED,
    DISCARDED,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_ARRIVED,
)
from repro.workload.generator import TaskArrival

from repro.framework.hotloop import hot_eligible, run_hot
from repro.framework.loadbalance import LoadBalancer
from repro.framework.monitoring import Monitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.model.gpp import GppPool
    from repro.network.delays import NetworkModel
    from repro.trace.bus import TraceBus


@dataclass
class SimulationResult:
    """Everything a run produces: metrics, per-task records, monitor series."""

    report: MetricsReport
    tasks: list[Task]
    monitor: Monitor
    load: LoadBalancer
    final_time: int
    partial: bool
    params: dict[str, object] = field(default_factory=dict)


class DReAMSim:
    """One simulation run over a fixed node table and arrival stream.

    Parameters
    ----------
    nodes, configs:
        The generated resource set (see :mod:`repro.workload.generator`).
    arrivals:
        Iterable of :class:`TaskArrival`, non-decreasing in time.
    partial:
        Scenario switch: partial reconfiguration on (paper's "with") or off
        (one node – one task baseline).
    policy:
        Placement-selection policy (default: the paper's min-area rule).
    max_retries / max_queue_length:
        Suspension-queue bounds (both unbounded by default, as in the paper's
        parameter set where discards arise only from impossible areas).
    debug_invariants_every:
        If set, run the full invariant checker every N placements (slow;
        testing/diagnosis only).
    sample_system_waste:
        Sample Eq. 6 at every placement (O(nodes) each; on by default).
    indexed:
        Legacy resource-manager mode switch: ``True`` (default) answers
        scheduler queries from area-ordered indexes with identical simulated
        step accounting; ``False`` runs the reference linear scans
        (differential baseline).  Ignored when ``backend`` is given.
    backend:
        Explicit backend selector: ``"array"`` (flat-table hot loop,
        :class:`repro.resources.arraycore.ArrayRIM` plus the array
        suspension queue), ``"indexed"`` or ``"scan"`` (object manager).
        ``None`` (default) resolves from ``indexed``.
    trace:
        Optional :class:`repro.trace.TraceBus`.  The simulator wires its
        clock and counters onto the bus and hands it to every subsystem, so
        one attached bus observes the full event stream (DESIGN.md §9).
        The backend is deliberately NOT recorded in the trace — all three
        backends must produce identical digests.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        configs: Iterable[Configuration],
        arrivals: Iterable[TaskArrival],
        partial: bool = True,
        policy: Optional[PlacementPolicy] = None,
        max_retries: Optional[int] = None,
        max_queue_length: Optional[int] = None,
        debug_invariants_every: Optional[int] = None,
        sample_system_waste: bool = True,
        monitor_min_interval: int = 0,
        per_tick_housekeeping: Optional[int] = None,
        network: Optional["NetworkModel"] = None,
        queue_order: str = "fifo",
        gpp: Optional["GppPool"] = None,
        indexed: bool = True,
        backend: Optional[str] = None,
        trace: Optional["TraceBus"] = None,
    ) -> None:
        self.env = Environment()
        self.counters = SearchCounters()
        self.trace = trace
        if trace is not None:
            trace.clock = lambda: int(self.env.now)
            trace.counters = self.counters
        self.backend = resolve_backend(backend, indexed)
        self.rim = create_manager(
            list(nodes), list(configs), self.counters,
            backend=self.backend, trace=trace,
        )
        queue_cls = (
            ArraySuspensionQueue if self.backend == "array" else SuspensionQueue
        )
        self.susqueue = queue_cls(
            self.counters,
            max_retries=max_retries,
            max_length=max_queue_length,
            order=queue_order,
            trace=trace,
        )
        self.scheduler = DreamScheduler(
            self.rim, self.susqueue, partial=partial, policy=policy,
            network=network, gpp_pool=gpp, trace=trace,
        )
        self.gpp = gpp
        self.partial = partial
        self.monitor = Monitor(min_interval=monitor_min_interval, trace=trace)
        self.load = LoadBalancer(self.rim)
        self.tasks: list[Task] = []
        self.placement_waste = RunningStats()
        self.system_waste_total = 0.0
        self._system_waste_samples = 0
        self._arrivals: Iterator[TaskArrival] = iter(arrivals)
        self._placements: dict[int, Placement] = {}  # task_no -> placement
        self._debug_every = debug_invariants_every
        self._sample_system = sample_system_waste
        self._placed_count = 0
        self._done = False
        self._final_value: Optional[int] = None  # cached by run()
        self._arrivals_done = False  # the lazy arrival feed hit stream end
        # Tasks parked in a fault-retry backoff: interrupted, scheduled to
        # re-enter at now + delay, in neither _placements nor the susqueue.
        # The failure injector maintains the count; the workload is not
        # finished while any retry is pending.
        self._pending_retries = 0
        # Per-tick housekeeping cost: the reference simulator advances time
        # tick-by-tick, maintaining node/config state each tick; the default
        # bills one step per node per elapsed tick (the monitoring walk).
        if per_tick_housekeeping is None:
            per_tick_housekeeping = len(self.rim.nodes)
        self._per_tick_hk = per_tick_housekeeping
        self._last_hk_time = 0

    # -- public API --------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> SimulationResult:
        """Run to completion (or to time ``until``) and build the report."""
        if self._done:
            raise RuntimeError("simulation already ran; create a new DReAMSim")
        if self.trace is not None:
            self.trace.emit(
                RUN_STARTED,
                nodes=len(self.rim.nodes),
                configs=len(self.rim.configs),
                partial=self.partial,
                sample_system=self._sample_system,
            )
        if until is None and hot_eligible(self):
            # Clean array-backend run: the flat-table hot loop replays the
            # exact event/charge/sampling semantics of the generic path an
            # order of magnitude faster (see repro.framework.hotloop).
            # The cyclic collector is paused for the loop: the hot path
            # allocates heavily but creates no cycles, and gen-0 scans of
            # the growing task/sample lists otherwise cost >10% of the
            # run.  Liveness is unaffected, so results are identical.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                run_hot(self)
            finally:
                if gc_was_enabled:
                    gc.enable()
        else:
            self._feed_next_arrival()
            self.env.run(until=until)
        final = self._final_time()
        self._final_value = final
        self._charge_tick_housekeeping(final)
        if self.trace is not None:
            self.trace.emit(RUN_FINISHED, final=final)
        self._done = True
        report = self.make_report()
        return SimulationResult(
            report=report,
            tasks=self.tasks,
            monitor=self.monitor,
            load=self.load,
            final_time=final,
            partial=self.partial,
            params={
                "nodes": len(self.rim.nodes),
                "configs": len(self.rim.configs),
                "partial": self.partial,
            },
        )

    def _final_time(self) -> int:
        """Eq. 5's total simulation time: the tick the workload finished.

        When every task is terminal, this is the last terminal event's time
        (stray non-workload events — e.g. a failure scheduled past the end —
        must not inflate it); on a bounded-horizon run it is the clock.
        """
        from repro.model.task import TaskStatus

        completed = TaskStatus.COMPLETED
        discarded = TaskStatus.DISCARDED
        last = 0
        for t in self.tasks:
            status = t.status
            if status is completed:
                ct = t.completion_time
                if ct > last:
                    last = ct
            elif status is discarded:
                hist = t.history
                if hist:
                    ht = hist[-1][0]
                    if ht > last:
                        last = ht
            else:
                return int(self.env.now)  # workload unfinished: use the clock
        if not self._arrivals_done:
            return int(self.env.now)
        return last

    def make_report(self) -> MetricsReport:
        """Assemble Table I from current state (``MakeReport``)."""
        return compute_report(
            tasks=self.tasks,
            nodes=self.rim.nodes,
            configs=self.rim.configs,
            counters=self.counters,
            scheduler_stats=self.scheduler.stats,
            reconfig_count_by_config=self.rim.reconfig_count_by_config,
            final_time=self._final_value if self._final_value is not None else self._final_time(),
            total_used_nodes=self.rim.total_used_nodes,
            placement_waste=self.placement_waste,
            system_waste_total=self.system_waste_total,
        )

    # -- event handlers ----------------------------------------------------------------

    @property
    def workload_finished(self) -> bool:
        """True once every generated task reached a terminal state."""
        return (
            self._arrivals_done
            and not self._placements
            and not self.susqueue
            and self._pending_retries == 0
        )

    def _feed_next_arrival(self) -> None:
        arrival = next(self._arrivals, None)
        if arrival is None:
            self._arrivals_done = True
            return
        at = max(arrival.at, int(self.env.now))
        self.env.call_at(at, lambda: self._on_arrival(arrival))

    def _charge_tick_housekeeping(self, now: int) -> None:
        """Bill the reference's per-tick state maintenance for elapsed ticks."""
        elapsed = now - self._last_hk_time
        if elapsed > 0 and self._per_tick_hk:
            self.counters.charge_housekeeping(elapsed * self._per_tick_hk)
        self._last_hk_time = max(self._last_hk_time, now)

    def _on_arrival(self, arrival: TaskArrival) -> None:
        now = int(self.env.now)
        self._charge_tick_housekeeping(now)
        task = arrival.task
        task.mark_created(now)
        self.tasks.append(task)
        if self.trace is not None:
            self.trace.emit(
                TASK_ARRIVED,
                task=task.task_no,
                pref=task.pref_config.config_no,
                req=task.required_time,
            )
        self._submit(task, now)
        self._feed_next_arrival()

    def _submit(self, task: Task, now: int) -> ScheduleOutcome:
        outcome = self.scheduler.schedule(task, now)
        if outcome.result is ScheduleResult.SCHEDULED:
            placement = outcome.placement
            assert placement is not None
            self._placements[task.task_no] = placement
            self._record_placement(placement, now)
            exec_time = (
                placement.exec_time if placement.exec_time is not None
                else task.required_time
            )
            finish = now + placement.start_delay + exec_time
            # The closure captures the placement so a completion scheduled
            # before a node failure is recognised as stale and ignored.
            self.env.call_at(
                finish, lambda p=placement: self._on_complete(task, p)
            )
        return outcome

    def _record_placement(self, placement: Placement, now: int) -> None:
        if placement.node is None:  # GPP offload: no reconfigurable area involved
            self.monitor.sample(now, self.rim, self.susqueue)
            self._placed_count += 1
            return
        # Fig. 6 headline sample: free area left on the hosting node.
        self.placement_waste.add(float(placement.node.available_area))
        if self._sample_system:
            self.system_waste_total += self.rim.total_wasted_area()
            self._system_waste_samples += 1
        self.monitor.sample(now, self.rim, self.susqueue)
        self._placed_count += 1
        if self._debug_every and self._placed_count % self._debug_every == 0:
            check_invariants(self.rim)

    def _on_complete(self, task: Task, expected_placement: Optional[Placement] = None) -> None:
        now = int(self.env.now)
        current = self._placements.get(task.task_no)
        if expected_placement is not None and current is not expected_placement:
            return  # stale completion: the node failed and the task restarted
        self._charge_tick_housekeeping(now)
        task.mark_completed(now)
        placement = self._placements.pop(task.task_no)
        if self.trace is not None:
            self.trace.emit(
                COMPLETED,
                task=task.task_no,
                node=placement.node.node_no if placement.node is not None else None,
                wait=task.waiting_time,
                run=task.running_time,
                closest=task.used_closest_match,
            )
        if placement.node is None:
            # GPP completion: free the core and offer it to the queue head.
            assert self.gpp is not None
            self.gpp.release(placement.gpp_slot)
            if self.susqueue:
                rec = self.susqueue.head
                if rec is not None:
                    candidate = self.susqueue.remove(rec)
                    self._submit(candidate, now)
            return
        node = placement.node
        self.rim.complete_task(task, node)
        self.monitor.sample(now, self.rim, self.susqueue)
        self.load.observe(now)
        self._redispatch_from(node, now)

    def _redispatch_from(self, node: Node, now: int) -> None:
        """Suspension-queue re-dispatch (§IV TaskCompletionProc protocol).

        Repeatedly pull the suitable task for the freed node (exact-config
        reuse first, reconfiguration fallback) and schedule it, until the
        node stops admitting tasks or a dispatch fails (a failed task
        re-suspends at the tail, so this always terminates).  Shared by task
        completion and by the failure injector when a scrub frees a region.
        """
        while True:
            candidate = self.scheduler.next_redispatch(node)
            if candidate is None:
                break
            outcome = self._submit(candidate, now)
            if outcome.result is not ScheduleResult.SCHEDULED:
                break
        # Enforce the retry bound, if configured.
        for expired in self.susqueue.expired():
            expired.mark_discarded(now)
            self.scheduler.stats.discarded += 1
            if self.trace is not None:
                self.trace.emit(DISCARDED, task=expired.task_no, reason="retries")


__all__ = ["DReAMSim", "SimulationResult"]
