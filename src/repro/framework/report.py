"""XML simulation report generation — §III's output subsystem.

"Contains an XML simulation report generator which accumulates the
statistics associated with various performance metrics."

Schema (documented here; round-trip tested):

.. code-block:: xml

    <dreamsim-report version="1">
      <parameters>
        <param name="nodes" value="200"/>
        ...
      </parameters>
      <metrics>
        <metric name="avg_wasted_area_per_task" value="..."/>
        ...
      </metrics>
      <placements>
        <placement kind="allocation" count="..."/>
        ...
      </placements>
    </dreamsim-report>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Mapping, Union

from repro.metrics.table1 import MetricsReport

_SCHEMA_VERSION = "1"


def report_to_xml(report: MetricsReport, params: Mapping[str, object] | None = None) -> str:
    """Serialise a metrics report (plus run parameters) to an XML string."""
    root = ET.Element("dreamsim-report", version=_SCHEMA_VERSION)

    p = ET.SubElement(root, "parameters")
    for name, value in (params or {}).items():
        ET.SubElement(p, "param", name=str(name), value=str(value))

    m = ET.SubElement(root, "metrics")
    flat = report.as_dict()
    placements = flat.pop("placements_by_kind")
    for name, value in flat.items():
        ET.SubElement(m, "metric", name=name, value=repr(value))

    pk = ET.SubElement(root, "placements")
    assert isinstance(placements, dict)
    for kind, count in sorted(placements.items()):
        ET.SubElement(pk, "placement", kind=kind, count=str(count))

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_report_xml(
    report: MetricsReport,
    path: Union[str, Path],
    params: Mapping[str, object] | None = None,
) -> Path:
    """Write the XML report to disk; returns the path."""
    path = Path(path)
    path.write_text(report_to_xml(report, params), encoding="utf-8")
    return path


def parse_report_xml(source: Union[str, Path]) -> dict[str, object]:
    """Parse a report back into ``{"params": …, "metrics": …, "placements": …}``.

    Accepts a path or an XML string.  Values are parsed with ``ast.literal_eval``
    semantics (int/float), falling back to the raw string.
    """
    text: str
    if isinstance(source, Path) or (isinstance(source, str) and not source.lstrip().startswith("<")):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    root = ET.fromstring(text)
    if root.tag != "dreamsim-report":
        raise ValueError(f"not a dreamsim report: root tag {root.tag!r}")

    def parse_value(v: str) -> object:
        for cast in (int, float):
            try:
                return cast(v)
            except ValueError:
                continue
        if v in ("True", "False"):
            return v == "True"
        return v

    out: dict[str, object] = {
        "version": root.get("version"),
        "params": {},
        "metrics": {},
        "placements": {},
    }
    for el in root.findall("./parameters/param"):
        out["params"][el.get("name")] = parse_value(el.get("value", ""))  # type: ignore[index]
    for el in root.findall("./metrics/metric"):
        out["metrics"][el.get("name")] = parse_value(el.get("value", ""))  # type: ignore[index]
    for el in root.findall("./placements/placement"):
        out["placements"][el.get("kind")] = int(el.get("count", "0"))  # type: ignore[index]
    return out


__all__ = ["report_to_xml", "write_report_xml", "parse_report_xml"]
