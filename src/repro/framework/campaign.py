"""Fault-campaign runner: one scalar spec → simulator + armed injector.

:func:`repro.quick_simulation` builds *and runs* a simulation in one call,
which leaves no moment to attach a :class:`FailureInjector` between
construction and ``run()``.  This module is the shared builder for every
fault-campaign consumer — the CLI's ``--faults`` flags, the resilience and
chaos test suites, and the perf harness — so they all derive the exact same
workload and fault process from the same scalar knobs.

A :class:`FaultCampaignSpec` uses Table II's workload defaults plus scalar
*mean* fault parameters; means are widened into ``UniformInt`` distributions
spanning ±50% (``_spread``), matching the paper's uniform-interval style.
Workload randomness comes from ``seed`` and fault randomness from
``fault_seed`` (default ``seed + 1``) so the same workload can be replayed
under different fault processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.framework.failures import FailureInjector
from repro.framework.simulator import DReAMSim, SimulationResult
from repro.rng import RNG
from repro.rng.distributions import Distribution, UniformInt
from repro.trace.bus import TraceBus
from repro.workload import ConfigSpec, NodeSpec, TaskSpec
from repro.workload.generator import (
    generate_configs,
    generate_nodes,
    generate_task_stream,
)


def _spread(mean: int) -> Distribution:
    """A ±50% uniform integer interval around a scalar mean (≥ 1)."""
    if mean < 1:
        raise ValueError(f"fault-parameter mean must be >= 1, got {mean}")
    return UniformInt(max(1, mean - mean // 2), mean + mean // 2)


@dataclass(frozen=True)
class FaultCampaignSpec:
    """One fault campaign: Table II workload knobs + scalar fault means.

    All fault processes are off by default — a spec with no fault knob set
    runs exactly the workload :func:`repro.quick_simulation` would (and
    :func:`run_campaign` then returns ``None`` for the injector).
    """

    nodes: int = 200
    configs: int = 50
    tasks: int = 2000
    partial: bool = True
    seed: int = 42
    fault_seed: Optional[int] = None  # default: seed + 1
    # Node-loss faults.
    mtbf: Optional[int] = None  # mean ticks between crashes (None = off)
    mttr: int = 500  # mean repair ticks
    max_failures: Optional[int] = None
    burst_rate: Optional[int] = None  # mean ticks between bursts (None = off)
    burst_size: int = 2
    burst_group: int = 8
    # Transient configuration faults.
    seu_rate: Optional[int] = None  # mean ticks between SEU strikes (None = off)
    scrub_factor: int = 1
    # Retry policy.
    retry_budget: Optional[int] = None
    backoff_base: int = 0
    backoff_cap: Optional[int] = None
    # Health-aware quarantine (all three required to enable).
    quarantine_threshold: Optional[int] = None
    probation: Optional[int] = None
    health_half_life: Optional[int] = None

    @property
    def faults_enabled(self) -> bool:
        return self.mtbf is not None or self.seu_rate is not None or self.burst_rate is not None

    def with_mode(self, partial: bool) -> "FaultCampaignSpec":
        """The same campaign under the other reconfiguration mode."""
        return replace(self, partial=partial)


def build_campaign(
    spec: FaultCampaignSpec,
    indexed: bool = True,
    backend: Optional[str] = None,
    trace: Optional[TraceBus] = None,
    arm: bool = True,
    workload: Optional[tuple] = None,
    **sim_kwargs: Any,
) -> tuple[DReAMSim, Optional[FailureInjector]]:
    """Construct the simulator and (if any fault knob is set) arm an injector.

    The workload derivation is identical to :func:`repro.quick_simulation`
    (same RNG stream, same specs), so a spec with faults off reproduces that
    run byte for byte.  ``arm=False`` returns the injector un-armed — the
    snapshot-restore path requires exactly that (restore rewires callbacks
    in place of :meth:`FailureInjector.arm`).

    ``workload`` short-circuits generation with a pre-built
    ``(nodes, configs, arrivals)`` triple.  The caller owns equivalence: the
    triple must be a fresh-state clone of exactly what this spec's seed
    would generate (the sweep worker's memo and the perf harness's
    ``WorkloadBundle`` both derive theirs from the same RNG sequence), and
    the fault RNG is unaffected because it draws from its own seed.
    """
    if workload is not None:
        node_list, config_list, stream = workload
    else:
        rng = RNG(seed=spec.seed)
        node_list = generate_nodes(NodeSpec(count=spec.nodes), rng)
        config_list = generate_configs(ConfigSpec(count=spec.configs), rng)
        # tasks=0 builds a source-fed service run: no constructor-side stream
        # at all (and no task-stream RNG draws), every arrival comes through
        # ingest.
        stream = []
        if spec.tasks:
            stream = list(
                generate_task_stream(TaskSpec(count=spec.tasks), config_list, rng)
            )
    sim = DReAMSim(
        node_list,
        config_list,
        stream,
        partial=spec.partial,
        indexed=indexed,
        backend=backend,
        trace=trace,
        **sim_kwargs,
    )
    if not spec.faults_enabled:
        return sim, None
    fault_seed = spec.fault_seed if spec.fault_seed is not None else spec.seed + 1
    needs_mttr = spec.mtbf is not None or spec.burst_rate is not None
    injector = FailureInjector(
        sim,
        mtbf=_spread(spec.mtbf) if spec.mtbf is not None else None,
        mttr=_spread(spec.mttr) if needs_mttr else None,
        rng=RNG(seed=fault_seed),
        max_failures=spec.max_failures,
        seu_rate=_spread(spec.seu_rate) if spec.seu_rate is not None else None,
        scrub_factor=spec.scrub_factor,
        retry_budget=spec.retry_budget,
        backoff_base=spec.backoff_base,
        backoff_cap=spec.backoff_cap,
        burst_rate=_spread(spec.burst_rate) if spec.burst_rate is not None else None,
        burst_size=spec.burst_size,
        burst_group=spec.burst_group,
        health_half_life=spec.health_half_life,
        quarantine_threshold=spec.quarantine_threshold,
        probation=spec.probation,
    )
    if arm:
        injector.arm()
    return sim, injector


def run_campaign(
    spec: FaultCampaignSpec,
    indexed: bool = True,
    backend: Optional[str] = None,
    trace: Optional[TraceBus] = None,
    workload: Optional[tuple] = None,
    **sim_kwargs: Any,
) -> tuple[SimulationResult, Optional[FailureInjector]]:
    """Build and run one campaign; returns the result and the injector."""
    sim, injector = build_campaign(
        spec,
        indexed=indexed,
        backend=backend,
        trace=trace,
        workload=workload,
        **sim_kwargs,
    )
    return sim.run(), injector


__all__ = ["FaultCampaignSpec", "build_campaign", "run_campaign"]
