"""The Marsaglia–Tsang ziggurat method for normal and exponential variates.

Direct reproduction of reference [17] of the paper (Marsaglia & Tsang, "The
Ziggurat Method for Generating Random Variables", JSS 2000): 128 rectangular
layers for the normal density, 256 for the exponential, with the published
tail constants.  The layer tables are *computed* at import time from the
recurrences in the paper rather than pasted as magic arrays, so the setup
itself is testable (monotonicity, area equality).

The hot path consumes one signed 32-bit integer per normal variate and takes
the fast rectangular exit ~97.6% of the time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.rng.bitgen import KissGenerator

# Published tail parameters (Marsaglia & Tsang 2000).
_R_NORMAL = 3.442619855899  # x-coordinate of the bottom layer edge
_V_NORMAL = 9.91256303526217e-3  # area of each layer
_R_EXP = 7.69711747013104972
_V_EXP = 3.949659822581572e-3

_M31 = 2147483648.0  # 2**31, scales signed ints to layer widths
_M32 = 4294967296.0  # 2**32, scales unsigned ints


@dataclass
class ZigguratTables:
    """Precomputed layer tables for both supported densities."""

    kn: list[int] = field(default_factory=list)  # normal: rectangle accept thresholds
    wn: list[float] = field(default_factory=list)  # normal: layer widths / 2^31
    fn: list[float] = field(default_factory=list)  # normal: density at layer edges
    ke: list[int] = field(default_factory=list)  # exponential thresholds
    we: list[float] = field(default_factory=list)
    fe: list[float] = field(default_factory=list)

    @classmethod
    def build(cls) -> "ZigguratTables":
        t = cls()
        t._build_normal()
        t._build_exponential()
        return t

    def _build_normal(self) -> None:
        n = 128
        kn = [0] * n
        wn = [0.0] * n
        fn = [0.0] * n
        dn = tn = _R_NORMAL
        vn = _V_NORMAL
        q = vn / math.exp(-0.5 * dn * dn)
        kn[0] = int((dn / q) * _M31)
        kn[1] = 0
        wn[0] = q / _M31
        wn[n - 1] = dn / _M31
        fn[0] = 1.0
        fn[n - 1] = math.exp(-0.5 * dn * dn)
        for i in range(n - 2, 0, -1):
            dn = math.sqrt(-2.0 * math.log(vn / dn + math.exp(-0.5 * dn * dn)))
            kn[i + 1] = int((dn / tn) * _M31)
            tn = dn
            fn[i] = math.exp(-0.5 * dn * dn)
            wn[i] = dn / _M31
        self.kn, self.wn, self.fn = kn, wn, fn

    def _build_exponential(self) -> None:
        n = 256
        ke = [0] * n
        we = [0.0] * n
        fe = [0.0] * n
        de = te = _R_EXP
        ve = _V_EXP
        q = ve / math.exp(-de)
        ke[0] = int((de / q) * _M32)
        ke[1] = 0
        we[0] = q / _M32
        we[n - 1] = de / _M32
        fe[0] = 1.0
        fe[n - 1] = math.exp(-de)
        for i in range(n - 2, 0, -1):
            de = -math.log(ve / de + math.exp(-de))
            ke[i + 1] = int((de / te) * _M32)
            te = de
            fe[i] = math.exp(-de)
            we[i] = de / _M32
        self.ke, self.we, self.fe = ke, we, fe


_TABLES = ZigguratTables.build()


def normal_variate(bits: KissGenerator, tables: ZigguratTables = _TABLES) -> float:
    """Standard normal variate (the paper's RNOR procedure)."""
    kn, wn, fn = tables.kn, tables.wn, tables.fn
    while True:
        hz = bits.next_int32()
        iz = hz & 127
        if abs(hz) < kn[iz]:
            # Fast path: point lies inside the rectangular core of layer iz.
            return hz * wn[iz]
        # nfix: edge or tail handling.
        if iz == 0:
            # Tail beyond r: Marsaglia's exact tail method.
            while True:
                x = -math.log(bits.next_uni()) / _R_NORMAL
                y = -math.log(bits.next_uni())
                if y + y >= x * x:
                    break
            return _R_NORMAL + x if hz > 0 else -(_R_NORMAL + x)
        x = hz * wn[iz]
        if fn[iz] + bits.next_uni() * (fn[iz - 1] - fn[iz]) < math.exp(-0.5 * x * x):
            return x
        # else: resample from the top of the loop


def exponential_variate(bits: KissGenerator, tables: ZigguratTables = _TABLES) -> float:
    """Standard exponential variate, mean 1 (the paper's REXP procedure)."""
    ke, we, fe = tables.ke, tables.we, tables.fe
    while True:
        jz = bits.next_uint32()
        iz = jz & 255
        if jz < ke[iz]:
            return jz * we[iz]
        # efix
        if iz == 0:
            return _R_EXP - math.log(bits.next_uni())
        x = jz * we[iz]
        if fe[iz] + bits.next_uni() * (fe[iz - 1] - fe[iz]) < math.exp(-x):
            return x


__all__ = ["ZigguratTables", "normal_variate", "exponential_variate"]
