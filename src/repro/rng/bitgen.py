"""Marsaglia's KISS combined generator — the ``rand_int32`` bit stream.

The ziggurat paper [17] pairs the method with Marsaglia's small, fast
uniform generators.  KISS ("Keep It Simple Stupid") combines three
independent generators so their defects cancel:

* **CONG** — a 32-bit linear congruential generator,
  ``x ← 69069·x + 1234567 (mod 2³²)``;
* **SHR3** — a 3-shift xorshift register, ``y ^= y<<13; y ^= y>>17;
  y ^= y<<5``;
* **MWC** — a pair of 16-bit multiply-with-carry generators,
  ``z ← 36969·(z & 65535) + (z >> 16)`` and
  ``w ← 18000·(w & 65535) + (w >> 16)``, combined as ``(z<<16) + w``.

The KISS output is ``(MWC ^ CONG) + SHR3`` modulo 2³².  Period ≈ 2¹²³.
Implemented in pure Python with explicit 32-bit masking.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF
_INV_2_32 = 1.0 / 4294967296.0  # 2**-32
_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53


class KissGenerator:
    """Deterministic 32-bit uniform generator (Marsaglia KISS).

    Parameters
    ----------
    seed:
        Any integer; expanded into the four state words with a SplitMix-style
        scrambler so that nearby seeds yield unrelated streams.  State words
        that the underlying generators require to be non-zero are forced
        non-zero.
    """

    __slots__ = ("_x", "_y", "_z", "_w", "seed")

    def __init__(self, seed: int = 123456789) -> None:
        self.seed = seed
        s = seed & 0xFFFFFFFFFFFFFFFF
        words = []
        for _ in range(4):
            # SplitMix64 step, then take the top 32 bits.
            s = (s + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            z = s
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
            z ^= z >> 31
            words.append((z >> 32) & _MASK32)
        self._x = words[0] or 123456789  # CONG state (any value is legal; avoid 0 anyway)
        self._y = words[1] or 362436069  # SHR3 state (must be non-zero)
        self._z = words[2] or 521288629  # MWC upper (must not be 0 or 0xFFFF-carry fixed points)
        self._w = words[3] or 916191069  # MWC lower

    def next_uint32(self) -> int:
        """Next 32-bit unsigned integer from the combined stream."""
        # Local-variable form of CONG + SHR3 + MWC; the intermediate MWC
        # masks are dropped because bits ≥ 32 survive the XOR/ADD unchanged
        # and the final mask removes them — the stream is bit-identical.
        x = (69069 * self._x + 1234567) & _MASK32
        y = self._y
        y ^= (y << 13) & _MASK32
        y ^= y >> 17
        y ^= (y << 5) & _MASK32
        z = (36969 * (self._z & 65535) + (self._z >> 16)) & _MASK32
        w = (18000 * (self._w & 65535) + (self._w >> 16)) & _MASK32
        self._x = x
        self._y = y
        self._z = z
        self._w = w
        return ((((z << 16) + w) ^ x) + y) & _MASK32

    def fill_uint32(self, out: list, n: int) -> None:
        """Append ``n`` stream words to ``out`` (bulk form of
        :meth:`next_uint32`; identical stream, one call instead of ``n``)."""
        x, y, z, w = self._x, self._y, self._z, self._w
        append = out.append
        for _ in range(n):
            x = (69069 * x + 1234567) & _MASK32
            y ^= (y << 13) & _MASK32
            y ^= y >> 17
            y ^= (y << 5) & _MASK32
            # 36969·0xFFFF + 0xFFFF < 2³² (same for 18000), so the MWC
            # updates cannot overflow 32 bits and need no mask here.
            z = 36969 * (z & 65535) + (z >> 16)
            w = 18000 * (w & 65535) + (w >> 16)
            append(((((z << 16) + w) ^ x) + y) & _MASK32)
        self._x, self._y, self._z, self._w = x, y, z, w

    def next_int32(self) -> int:
        """Next signed 32-bit integer (two's complement view of the stream).

        The ziggurat algorithm consumes *signed* integers so the sign bit
        doubles as the variate's sign.
        """
        u = self.next_uint32()
        return u - 4294967296 if u >= 2147483648 else u

    def next_double(self) -> float:
        """Uniform double in [0, 1) with 53 random bits."""
        # Two inlined next_uint32 draws (26 high bits, then 27 low bits).
        x, y, z, w = self._x, self._y, self._z, self._w
        x = (69069 * x + 1234567) & _MASK32
        y ^= (y << 13) & _MASK32
        y ^= y >> 17
        y ^= (y << 5) & _MASK32
        z = (36969 * (z & 65535) + (z >> 16)) & _MASK32
        w = (18000 * (w & 65535) + (w >> 16)) & _MASK32
        high = (((((z << 16) + w) ^ x) + y) & _MASK32) >> 6
        x = (69069 * x + 1234567) & _MASK32
        y ^= (y << 13) & _MASK32
        y ^= y >> 17
        y ^= (y << 5) & _MASK32
        z = (36969 * (z & 65535) + (z >> 16)) & _MASK32
        w = (18000 * (w & 65535) + (w >> 16)) & _MASK32
        low = (((((z << 16) + w) ^ x) + y) & _MASK32) >> 5
        self._x, self._y, self._z, self._w = x, y, z, w
        return (high * 134217728.0 + low) * _INV_2_53

    def next_uni(self) -> float:
        """Single-word uniform in (0, 1) — the ziggurat's cheap UNI."""
        return (self.next_uint32() + 0.5) * _INV_2_32

    def getstate(self) -> tuple[int, int, int, int]:
        """The four KISS state words (for checkpoint/restore)."""
        return (self._x, self._y, self._z, self._w)

    def setstate(self, state: tuple[int, int, int, int]) -> None:
        """Restore state captured by :meth:`getstate`; validates ranges."""
        x, y, z, w = state
        for v in state:
            if not 0 <= v <= _MASK32:
                raise ValueError(f"state word {v} out of 32-bit range")
        if y == 0:
            raise ValueError("SHR3 state must be non-zero")
        self._x, self._y, self._z, self._w = x, y, z, w

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KissGenerator(seed={self.seed})"
