"""Random number generation substrate (S2).

The paper's ``RNG`` class is "based on the Ziggurat Method [17] using the
algorithm described in [18] for generating Gamma variables" and exposes
``poisson``, ``binomial``, ``gamma``, ``multinom`` and ``rand_int32``.  This
package is a from-scratch reproduction of that stack:

* :mod:`repro.rng.bitgen` — Marsaglia's KISS combined generator providing the
  ``rand_int32`` bit stream (SHR3 xorshift + CONG LCG + MWC pair).
* :mod:`repro.rng.ziggurat` — the Marsaglia–Tsang ziggurat for normal and
  exponential variates (128/256 layers, published constants).
* :mod:`repro.rng.gamma` — the Marsaglia–Tsang "simple method" for gamma
  variables (squeeze on ``d·(1+c·x)³``).
* :mod:`repro.rng.discrete` — exact Poisson / binomial / multinomial samplers
  built on the gamma/beta recursions (no approximation cutoffs).
* :mod:`repro.rng.distributions` — declarative distribution objects used by
  the workload generator to express Table II's parameter ranges.

All sampling is deterministic given a seed, which the experiment harness
relies on for replayable simulations.
"""

from typing import Sequence, TypeVar

from repro.rng.bitgen import KissGenerator
from repro.rng.discrete import binomial, multinomial, poisson
from repro.rng.distributions import (
    Bernoulli,
    Choice,
    Constant,
    Distribution,
    Exponential,
    GammaDist,
    NormalDist,
    PoissonDist,
    Uniform,
    UniformInt,
    distribution_from_spec,
)
from repro.rng.gamma import gamma_variate
from repro.rng.ziggurat import ZigguratTables, exponential_variate, normal_variate

_T = TypeVar("_T")


class RNG:
    """Facade mirroring the paper's ``RNG`` class (Fig. 4).

    Wraps a :class:`KissGenerator` bit stream and exposes the distribution
    methods named in the UML diagram, plus the uniform helpers every other
    module needs.

    >>> rng = RNG(seed=42)
    >>> 0 <= rng.rand_int32() < 2**32
    True
    >>> 1 <= rng.randint(1, 50) <= 50
    True
    """

    def __init__(self, seed: int = 123456789) -> None:
        self._bits = KissGenerator(seed)
        self.seed = seed

    # -- uniform layer ------------------------------------------------------

    def rand_int32(self) -> int:
        """Next raw 32-bit unsigned integer from the KISS stream."""
        return self._bits.next_uint32()

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._bits.next_double()

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        if high < low:
            raise ValueError(f"uniform requires low <= high, got [{low}, {high}]")
        return low + (high - low) * self._bits.next_double()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the *inclusive* range [low, high].

        Uses rejection to avoid modulo bias — the Table II ranges (e.g. node
        areas in [1000, 4000]) must be exactly uniform.
        """
        if high < low:
            raise ValueError(f"randint requires low <= high, got [{low}, {high}]")
        span = high - low + 1
        # Rejection sampling from the 32-bit stream (span fits in 32 bits for
        # every parameter in this reproduction).
        if span > 4294967296:
            raise ValueError("randint span exceeds 32-bit generator range")
        limit = 4294967296 - (4294967296 % span)
        next_uint32 = self._bits.next_uint32
        r = next_uint32()
        while r >= limit:
            r = next_uint32()
        return low + (r % span)

    # -- continuous distributions -------------------------------------------

    def normal(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian variate via the ziggurat method."""
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        return mu + sigma * normal_variate(self._bits)

    def exponential(self, rate: float = 1.0) -> float:
        """Exponential variate (mean 1/rate) via the ziggurat method."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return exponential_variate(self._bits) / rate

    def gamma(self, shape: float, scale: float = 1.0) -> float:
        """Gamma variate via the Marsaglia–Tsang method [18]."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return gamma_variate(self._bits, shape) * scale

    # -- discrete distributions -----------------------------------------------

    def poisson(self, lam: float) -> int:
        """Poisson variate (exact, gamma-recursion for large means)."""
        return poisson(self, lam)

    def binomial(self, p: float, n: int) -> int:
        """Binomial variate with the paper's (p, n) argument order."""
        return binomial(self, n, p)

    def multinom(self, n: int, weights: Sequence[float]) -> list[int]:
        """Multinomial counts for ``n`` trials over ``weights`` categories."""
        return multinomial(self, n, weights)

    # -- misc ------------------------------------------------------------------

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def choice(self, seq: Sequence[_T]) -> _T:
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def getstate(self) -> tuple[int, int, int, int]:
        """The underlying KISS bit-generator state (snapshot support).

        Every distribution method draws only from the shared bit stream, so
        this four-word tuple fully determines all future variates.
        """
        return self._bits.getstate()

    def setstate(self, state: tuple[int, int, int, int]) -> None:
        """Restore a state previously captured with :meth:`getstate`."""
        self._bits.setstate(state)

    def spawn(self, stream: int) -> "RNG":
        """Derive an independent, reproducible sub-stream.

        Used so task generation, node generation, and service times each get
        their own stream: adding one more draw to a stream does not perturb
        the others (a standard HPC-simulation reproducibility idiom).
        """
        # SplitMix-style mixing of (seed, stream) into a new 64-bit seed.
        z = (self.seed + 0x9E3779B97F4A7C15 * (stream + 1)) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        z ^= z >> 31
        return RNG(seed=z or 1)


__all__ = [
    "RNG",
    "KissGenerator",
    "ZigguratTables",
    "normal_variate",
    "exponential_variate",
    "gamma_variate",
    "poisson",
    "binomial",
    "multinomial",
    "Distribution",
    "Uniform",
    "UniformInt",
    "Exponential",
    "NormalDist",
    "GammaDist",
    "PoissonDist",
    "Bernoulli",
    "Constant",
    "Choice",
    "distribution_from_spec",
]
