"""Exact discrete samplers: Poisson, binomial, multinomial.

These reuse the continuous substrates (gamma/beta) through the classical
exact recursions (Devroye 1986, ch. X), so they are correct for *all*
parameter values without approximation cutoffs:

* **Binomial** — for small ``n``, Bernoulli summation; for large ``n``, the
  beta-splitting recursion ``Bin(n, p)`` → order statistic ``X ~ Beta(i,
  n+1−i)`` with ``i = ⌊(n+1)/2⌋``: if ``X ≤ p`` then ``i + Bin(n−i,
  (p−X)/(1−X))`` else ``Bin(i−1, p/X)``.  O(log n) beta draws.
* **Poisson** — for small means, Knuth's product-of-uniforms; for large
  means, the gamma-splitting recursion: with ``m = ⌊0.875·λ⌋``, draw
  ``X ~ Gamma(m)``; if ``X > λ`` return ``Bin(m−1, λ/X)`` else
  ``m + Poisson(λ−X)``.
* **Multinomial** — sequential conditional binomials.

The function signatures take the :class:`repro.rng.RNG` facade (they need
both the raw bit stream and the uniform helpers).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.rng.gamma import beta_variate, gamma_variate

if TYPE_CHECKING:  # pragma: no cover
    from repro.rng import RNG

_BERNOULLI_SUM_LIMIT = 64  # below this, direct summation beats recursion
_KNUTH_POISSON_LIMIT = 30.0  # product method fine below this mean


def binomial(rng: "RNG", n: int, p: float) -> int:
    """Exact Binomial(n, p) variate."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    # Work with p <= 1/2 for numerical behaviour; mirror the result.
    if p > 0.5:
        return n - binomial(rng, n, 1.0 - p)

    successes = 0
    while True:
        if n <= _BERNOULLI_SUM_LIMIT:
            for _ in range(n):
                if rng.random() < p:
                    successes += 1
            return successes
        # Beta splitting around the median order statistic.
        i = (n + 1) // 2
        x = beta_variate(rng._bits, float(i), float(n + 1 - i))
        if x <= p:
            successes += i
            n -= i
            p = (p - x) / (1.0 - x) if x < 1.0 else 0.0
        else:
            n = i - 1
            p = p / x
        p = min(max(p, 0.0), 1.0)
        if n <= 0:
            return successes


def poisson(rng: "RNG", lam: float) -> int:
    """Exact Poisson(lam) variate."""
    if lam < 0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    if lam == 0.0:
        return 0

    count = 0
    while lam > _KNUTH_POISSON_LIMIT:
        m = int(0.875 * lam)
        if m < 1:
            break
        x = gamma_variate(rng._bits, float(m))
        if x > lam:
            # The m-th arrival exceeded the window: fewer than m events, each
            # of the first m-1 arrival times uniform in (0, x).
            return count + binomial(rng, m - 1, lam / x)
        count += m
        lam -= x

    # Knuth's method for the (small) remainder.
    threshold = math.exp(-lam)
    k = 0
    prod = rng.random()
    while prod > threshold:
        k += 1
        prod *= rng.random()
    return count + k


def multinomial(rng: "RNG", n: int, weights: Sequence[float]) -> list[int]:
    """Multinomial counts: ``n`` trials over categories with given weights.

    Weights need not be normalised; they must be non-negative with a positive
    sum.  Returns a list of counts summing to ``n``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ws = [float(w) for w in weights]
    if not ws:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in ws):
        raise ValueError("weights must be non-negative")
    total = math.fsum(ws)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")

    counts = [0] * len(ws)
    remaining_n = n
    remaining_w = total
    for i, w in enumerate(ws[:-1]):
        if remaining_n == 0:
            break
        if remaining_w <= 0:  # pragma: no cover - fsum guard
            break
        p = min(max(w / remaining_w, 0.0), 1.0)
        c = binomial(rng, remaining_n, p)
        counts[i] = c
        remaining_n -= c
        remaining_w -= w
    counts[-1] += remaining_n
    return counts


__all__ = ["binomial", "poisson", "multinomial"]
