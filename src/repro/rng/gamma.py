"""Marsaglia–Tsang gamma variates — reference [18] of the paper.

"A Simple Method for Generating Gamma Variables" (TOMS 2000): for shape
``a ≥ 1`` set ``d = a − 1/3`` and ``c = 1/√(9d)``; draw a standard normal
``x`` and uniform ``u`` and accept ``d·v`` with ``v = (1 + c·x)³`` when

* the cheap squeeze ``u < 1 − 0.0331·x⁴`` passes, or
* ``ln u < x²/2 + d − d·v + d·ln v``.

For ``a < 1`` the standard boost is used:
``Gamma(a) = Gamma(a+1) · U^{1/a}``.
"""

from __future__ import annotations

import math

from repro.rng.bitgen import KissGenerator
from repro.rng.ziggurat import normal_variate


def gamma_variate(bits: KissGenerator, shape: float) -> float:
    """Gamma(shape, scale=1) variate by the Marsaglia–Tsang method."""
    if shape <= 0:
        raise ValueError(f"shape must be positive, got {shape}")
    if shape < 1.0:
        # Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        u = bits.next_uni()
        return gamma_variate(bits, shape + 1.0) * u ** (1.0 / shape)

    d = shape - 1.0 / 3.0
    c = 1.0 / math.sqrt(9.0 * d)
    while True:
        # Generate v = (1 + c*x)^3 with v > 0.
        while True:
            x = normal_variate(bits)
            v = 1.0 + c * x
            if v > 0.0:
                break
        v = v * v * v
        u = bits.next_uni()
        x2 = x * x
        if u < 1.0 - 0.0331 * x2 * x2:
            return d * v  # squeeze accept (vast majority of draws)
        if math.log(u) < 0.5 * x2 + d * (1.0 - v + math.log(v)):
            return d * v


def beta_variate(bits: KissGenerator, alpha: float, beta: float) -> float:
    """Beta(alpha, beta) via the two-gamma construction.

    Needed by the exact binomial splitting sampler in
    :mod:`repro.rng.discrete`.
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError("beta_variate requires positive shape parameters")
    x = gamma_variate(bits, alpha)
    y = gamma_variate(bits, beta)
    total = x + y
    if total == 0.0:  # pragma: no cover - vanishing probability underflow guard
        return 0.5
    return x / total


__all__ = ["gamma_variate", "beta_variate"]
