"""Declarative distribution objects for workload and resource specification.

Table II of the paper expresses every simulation parameter as a range with a
distribution ("task arrival interval … [1..50] time-ticks with uniform
distribution").  The input subsystem accepts these as :class:`Distribution`
objects, so a user can switch a parameter from uniform to Poisson or gamma
arrivals without touching generator code — the "user-defined task arrival
rate and distribution functions" feature of §III.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.rng import RNG


class Distribution(abc.ABC):
    """A sampleable univariate distribution."""

    @abc.abstractmethod
    def sample(self, rng: "RNG") -> float:
        """Draw one variate."""

    def sample_int(self, rng: "RNG") -> int:
        """Draw one variate rounded to a non-negative integer timetick/area."""
        return max(0, int(round(self.sample(rng))))

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean (used by analysis sanity checks)."""


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    value: float

    def sample(self, rng: "RNG") -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Continuous uniform on [low, high)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"Uniform requires low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: "RNG") -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class UniformInt(Distribution):
    """Discrete uniform on the inclusive integer range [low, high].

    This is the distribution of every bracketed range in Table II.
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"UniformInt requires low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: "RNG") -> float:
        return float(rng.randint(self.low, self.high))

    def sample_int(self, rng: "RNG") -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (inter-arrival modelling)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("Exponential mean must be positive")

    def sample(self, rng: "RNG") -> float:
        return rng.exponential(rate=1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class NormalDist(Distribution):
    """Gaussian; ``sample_int`` clamps at zero for time/area uses."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: "RNG") -> float:
        return rng.normal(self.mu, self.sigma)

    def mean(self) -> float:
        return self.mu


@dataclass(frozen=True)
class GammaDist(Distribution):
    """Gamma(shape, scale) — heavy-tailed service times."""

    shape: float
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def sample(self, rng: "RNG") -> float:
        return rng.gamma(self.shape, self.scale)

    def mean(self) -> float:
        return self.shape * self.scale


@dataclass(frozen=True)
class PoissonDist(Distribution):
    """Poisson with mean ``lam`` (bursty arrival counts)."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("lam must be non-negative")

    def sample(self, rng: "RNG") -> float:
        return float(rng.poisson(self.lam))

    def mean(self) -> float:
        return self.lam


@dataclass(frozen=True)
class Bernoulli(Distribution):
    """Bernoulli(p) — e.g. the 15% closest-match coin of Table II."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must lie in [0, 1]")

    def sample(self, rng: "RNG") -> float:
        return 1.0 if rng.random() < self.p else 0.0

    def mean(self) -> float:
        return self.p


class Choice(Distribution):
    """Uniform (or weighted) choice over a finite value set."""

    def __init__(
        self, values: Sequence[float], weights: Sequence[float] | None = None
    ) -> None:
        if not values:
            raise ValueError("Choice requires at least one value")
        self.values = list(values)
        if weights is not None:
            if len(weights) != len(values):
                raise ValueError("weights must match values in length")
            total = float(sum(weights))
            if total <= 0 or any(w < 0 for w in weights):
                raise ValueError("weights must be non-negative with positive sum")
            self.cum: list[float] | None = []
            acc = 0.0
            for w in weights:
                acc += w / total
                self.cum.append(acc)
        else:
            self.cum = None

    def sample(self, rng: "RNG") -> float:
        if self.cum is None:
            return float(rng.choice(self.values))
        u = rng.random()
        for v, c in zip(self.values, self.cum):
            if u <= c:
                return float(v)
        return float(self.values[-1])

    def mean(self) -> float:
        if self.cum is None:
            return sum(self.values) / len(self.values)
        probs = [self.cum[0]] + [b - a for a, b in zip(self.cum, self.cum[1:])]
        return sum(v * p for v, p in zip(self.values, probs))


_SPEC_REGISTRY = {
    "constant": lambda d: Constant(float(d["value"])),
    "uniform": lambda d: Uniform(float(d["low"]), float(d["high"])),
    "uniform_int": lambda d: UniformInt(int(d["low"]), int(d["high"])),
    "exponential": lambda d: Exponential(float(d["mean"])),
    "normal": lambda d: NormalDist(float(d["mu"]), float(d["sigma"])),
    "gamma": lambda d: GammaDist(float(d["shape"]), float(d.get("scale", 1.0))),
    "poisson": lambda d: PoissonDist(float(d["lam"])),
    "bernoulli": lambda d: Bernoulli(float(d["p"])),
}


def distribution_from_spec(spec: Mapping[str, Any]) -> Distribution:
    """Build a distribution from a plain dict, e.g. parsed from a CLI config.

    >>> distribution_from_spec({"kind": "uniform_int", "low": 1, "high": 50})
    UniformInt(low=1, high=50)
    """
    kind = spec.get("kind")
    if kind not in _SPEC_REGISTRY:
        raise ValueError(f"unknown distribution kind {kind!r}; options: {sorted(_SPEC_REGISTRY)}")
    return _SPEC_REGISTRY[kind](spec)


__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "UniformInt",
    "Exponential",
    "NormalDist",
    "GammaDist",
    "PoissonDist",
    "Bernoulli",
    "Choice",
    "distribution_from_spec",
]
