"""Versioned, deterministic simulation checkpoints.

A :class:`Snapshot` is plain data (stdlib-JSON serializable, no pickling):
the simulator's exported state, the failure injector's (when one is
attached), and the trace position — the emission sequence number and the
running digest at the cut.  The restore contract, proven by
``tests/snapshot_harness.py`` across every backend and campaign:

    ``restore`` onto a freshly built identical system, then run to the end
    → final trace digest and Table I report **byte-identical** to the
    uninterrupted run.

Snapshots are keyed by a prefix of the trace digest at snapshot time (or a
``t{now}-e{events}`` fallback for untraced runs), so a checkpoint file names
the exact event-stream prefix it extends.  ``SNAPSHOT_VERSION`` gates the
format: any field change bumps it, and both :meth:`Snapshot.from_json` and
:func:`restore_snapshot` reject mismatches loudly instead of mis-restoring.

All exported state flows through the managers' public export/restore hooks
(``export_state``/``restore_state``/``export_task``…) — dreamlint rule
DL009 forbids this package from reaching into private attributes, which
keeps the serialization honest as internals evolve.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.framework.failures import FailureInjector
    from repro.framework.simulator import DReAMSim

#: Bump on ANY change to the exported state layout.
#: v2: stale completion events travel as explicit ``("noop", task_no)``
#: queue entries instead of being dropped, so a restored run reproduces the
#: uninterrupted run's final time even when a dead completion is the last
#: event in the heap.
SNAPSHOT_VERSION = 2

#: Hex digits of the trace digest used as the snapshot key.
_KEY_PREFIX = 12


class SnapshotError(ValueError):
    """A snapshot cannot be read or restored (version skew, bad shape…)."""


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint: everything needed to resume the run elsewhere.

    ``backend`` records where the snapshot was *cut*, as provenance only —
    the state formats are backend-neutral and restore accepts any backend
    (DESIGN.md §14).  ``trace_seq``/``trace_digest`` are ``None`` for
    untraced runs.
    """

    version: int
    key: str
    backend: str
    partial: bool
    trace_seq: Optional[int]
    trace_digest: Optional[str]
    sim: dict
    injector: Optional[dict]

    def to_json(self) -> str:
        """Serialize with stable key order (diff- and digest-friendly)."""
        return json.dumps(
            {
                "version": self.version,
                "key": self.key,
                "backend": self.backend,
                "partial": self.partial,
                "trace_seq": self.trace_seq,
                "trace_digest": self.trace_digest,
                "sim": self.sim,
                "injector": self.injector,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Parse and version-check a serialized snapshot."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot is not valid JSON: {exc}") from None
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} is not supported by this build "
                f"(expected {SNAPSHOT_VERSION}); re-create the checkpoint with "
                "a matching version"
            )
        return cls(
            version=version,
            key=data["key"],
            backend=data["backend"],
            partial=data["partial"],
            trace_seq=data["trace_seq"],
            trace_digest=data["trace_digest"],
            sim=data["sim"],
            injector=data["injector"],
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Write the snapshot to a file; returns the path."""
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return p

    @classmethod
    def read(cls, path: Union[str, Path]) -> "Snapshot":
        """Load and version-check a snapshot file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def snapshot_of(
    sim: "DReAMSim",
    injector: Optional["FailureInjector"] = None,
    digest: Optional[str] = None,
) -> Snapshot:
    """Cut a checkpoint from a started, unfinished run.

    Call between events only (the service driver and the harness always
    do); ``digest`` is the trace digest at the cut, from
    :meth:`repro.trace.bus.DigestSink.hexdigest`.
    """
    state = sim.export_state()
    inj_state = injector.export_state() if injector is not None else None
    if digest is not None:
        key = digest[:_KEY_PREFIX]
    else:
        env = state["env"]
        key = f"t{env['now']}-e{env['event_count']}"
    return Snapshot(
        version=SNAPSHOT_VERSION,
        key=key,
        backend=state["backend"],
        partial=state["partial"],
        trace_seq=state["trace_seq"],
        trace_digest=digest,
        sim=state,
        injector=inj_state,
    )


def restore_snapshot(
    snapshot: Snapshot,
    sim: "DReAMSim",
    injector: Optional["FailureInjector"] = None,
) -> None:
    """Restore a checkpoint onto a freshly built identical system.

    ``sim`` (and ``injector``, when the snapshot carries injector state)
    must be freshly constructed with the original parameters — typically
    ``build_campaign(spec, backend=..., arm=False)`` — and the injector
    must NOT be armed: restore rewires its callbacks itself.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version!r} is not supported by this "
            f"build (expected {SNAPSHOT_VERSION})"
        )
    if snapshot.injector is not None and injector is None:
        raise SnapshotError(
            "snapshot carries failure-injector state; construct the matching "
            "(un-armed) injector and pass it to restore"
        )
    if snapshot.injector is None and injector is not None:
        raise SnapshotError("snapshot has no injector state but an injector was given")
    if snapshot.injector is not None:
        sim.restore_state(
            snapshot.sim, injector=injector, injector_state=snapshot.injector
        )
    else:
        sim.restore_state(snapshot.sim)


__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "restore_snapshot",
    "snapshot_of",
]
