"""Arrival sources: where a service-mode simulator's tasks come from.

Batch runs hand the simulator its whole workload up front; a service pulls
arrivals from a source as simulated time advances.  The seam is tiny —
:meth:`ArrivalSource.take_until` releases every arrival due by a time, and
:attr:`ArrivalSource.exhausted` says whether more may ever come — so any
producer (trace replay, file tail, message queue) plugs in.

Arrivals must be released in non-decreasing ``at`` order across calls; the
simulator's ingest seam relies on it (and its event heap would reorder a
violation anyway, changing nothing but wasting the contract).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Protocol, Sequence, Union

from repro.model.config import Configuration
from repro.model.task import Task
from repro.workload.generator import TaskArrival
from repro.workload.swf import read_swf, tasks_from_swf


class ArrivalSource(Protocol):
    """Anything that feeds a :class:`~repro.service.ServiceSimulator`."""

    def take_until(self, t: int) -> list[TaskArrival]:
        """Release every arrival with ``at <= t`` not yet released."""
        ...

    def take_all(self) -> list[TaskArrival]:
        """Release everything available (the drain path)."""
        ...

    @property
    def exhausted(self) -> bool:
        """True once no further arrivals can ever appear."""
        ...


class ReplaySource:
    """Replay a fixed arrival list at its recorded submit times.

    The service driver pulls each window's due slice with
    :meth:`take_until`; :meth:`from_swf` builds the list from a Standard
    Workload Format trace, so an archived real workload streams into the
    simulator at its real (scaled) submit times.
    """

    def __init__(self, arrivals: Sequence[TaskArrival]) -> None:
        self._arrivals = sorted(arrivals, key=lambda a: (a.at, a.task.task_no))
        self._next = 0

    @classmethod
    def from_swf(
        cls,
        source: Union[str, Path],
        configs: Sequence[Configuration],
        time_scale: float = 1.0,
    ) -> "ReplaySource":
        """An SWF trace replayed against a generated configuration list."""
        return cls(tasks_from_swf(read_swf(source), configs, time_scale=time_scale))

    def take_until(self, t: int) -> list[TaskArrival]:
        """The not-yet-released arrivals with ``at <= t``, in order."""
        start = self._next
        end = start
        arrivals = self._arrivals
        while end < len(arrivals) and arrivals[end].at <= t:
            end += 1
        self._next = end
        return arrivals[start:end]

    def take_all(self) -> list[TaskArrival]:
        """Release everything left (drain)."""
        out = self._arrivals[self._next :]
        self._next = len(self._arrivals)
        return out

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._arrivals)

    def __len__(self) -> int:
        return len(self._arrivals) - self._next


class JsonlTailSource:
    """Tail a JSONL file an external producer appends task records to.

    One record per line: ``{"no": 7, "at": 120, "req": 900, "pref": 3}``
    with optional ``"data"``, and — for a preference outside the system's
    configuration list — ``"pref_area"`` / ``"pref_ctime"`` to fabricate
    it.  :meth:`poll` reads newly appended complete lines (a trailing
    partial line is left for the next poll); the file is *open-ended*: the
    source only reports :attr:`exhausted` after :meth:`close` marks the
    producer done, mirroring ``DReAMSim.close_ingest``.
    """

    def __init__(self, path: Union[str, Path], configs: Sequence[Configuration]) -> None:
        self.path = Path(path)
        self._configs = {c.config_no: c for c in configs}
        self._fabricated: dict[int, Configuration] = {}
        self._offset = 0
        self._carry = ""
        self._buffer: list[TaskArrival] = []
        self._closed = False

    def close(self) -> None:
        """The producer is done appending; drain what is buffered and stop."""
        self._closed = True

    def poll(self) -> int:
        """Ingest newly appended complete lines; returns records read."""
        if not self.path.exists():
            return 0
        size = os.path.getsize(self.path)
        if size <= self._offset:
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        text = self._carry + chunk
        lines = text.split("\n")
        self._carry = lines.pop()  # trailing partial (or empty) line
        count = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            self._buffer.append(self._parse(json.loads(line)))
            count += 1
        return count

    def _parse(self, rec: dict) -> TaskArrival:
        pref_no = rec["pref"]
        pref = self._configs.get(pref_no)
        if pref is None:
            pref = self._fabricated.get(pref_no)
        if pref is None:
            if "pref_area" not in rec:
                raise ValueError(
                    f"task {rec.get('no')}: pref {pref_no} is not a system "
                    "configuration and no pref_area/pref_ctime were given"
                )
            pref = Configuration(
                config_no=pref_no,
                req_area=rec["pref_area"],
                config_time=rec.get("pref_ctime", 0),
            )
            self._fabricated[pref_no] = pref
        task = Task(
            task_no=rec["no"],
            required_time=rec["req"],
            pref_config=pref,
            data=rec.get("data"),
        )
        return TaskArrival(at=rec["at"], task=task)

    def take_until(self, t: int) -> list[TaskArrival]:
        """Poll the file, then release the buffered arrivals with ``at <= t``."""
        self.poll()
        due = [a for a in self._buffer if a.at <= t]
        self._buffer = [a for a in self._buffer if a.at > t]
        due.sort(key=lambda a: (a.at, a.task.task_no))
        return due

    def take_all(self) -> list[TaskArrival]:
        """Release everything read so far (drain)."""
        self.poll()
        out = sorted(self._buffer, key=lambda a: (a.at, a.task.task_no))
        self._buffer = []
        return out

    @property
    def exhausted(self) -> bool:
        return self._closed and not self._buffer


__all__ = ["ArrivalSource", "JsonlTailSource", "ReplaySource"]
