"""The service driver: a simulator advanced in windows, queryable mid-run.

:class:`ServiceSimulator` owns the trace wiring a long-lived run needs —
a :class:`~repro.trace.bus.MemorySink` (for mid-run replay and resume
prefixes) and a :class:`~repro.trace.bus.DigestSink` (the determinism
witness) are always attached, plus an optional JSONL file sink.  The
driver advances simulated time with :meth:`advance_to`, pulling each
window's due arrivals from its :class:`~repro.service.sources.ArrivalSource`
through the simulator's ingest seam, and :meth:`drain` seals the run.

:meth:`report_view` answers "what does Table I look like *right now*":
the partial trace plus one synthetic ``RunFinished`` framing event is
folded through :class:`~repro.trace.replay.TraceReplayer` — literally the
end-of-run assembly code path, reused on the prefix — so a mid-run view
and the final report can never drift apart structurally.

:meth:`checkpoint` / :meth:`ServiceSimulator.resume` wrap the snapshot
layer; resuming re-folds the trace prefix into fresh sinks and verifies
its digest against the checkpoint before restoring, so a mismatched
prefix fails loudly instead of producing a silently different stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.framework.campaign import FaultCampaignSpec, build_campaign
from repro.framework.failures import FailureInjector
from repro.framework.simulator import DReAMSim, SimulationResult
from repro.metrics.resilience import ResilienceReport
from repro.metrics.table1 import MetricsReport
from repro.service.snapshot import Snapshot, SnapshotError, restore_snapshot, snapshot_of
from repro.service.sources import ArrivalSource
from repro.trace.bus import DigestSink, JsonlSink, MemorySink, TraceBus
from repro.trace.events import TraceEvent
from repro.trace.replay import TraceReplayer, synthetic_run_finished


@dataclass(frozen=True)
class ReportView:
    """Table I (and the resilience report) as of one mid-run moment."""

    time: int
    events_seen: int
    report: MetricsReport
    resilience: ResilienceReport


class ServiceSimulator:
    """One campaign run as an incrementally driven, checkpointable service.

    Parameters
    ----------
    spec:
        The campaign (workload + fault knobs); the constructor-side task
        stream it implies still feeds first — set ``tasks=0`` for a run
        fed purely from ``source``.
    backend:
        Resource-manager backend (``array``/``indexed``/``scan``).
    source:
        Optional :class:`ArrivalSource`; its due arrivals are ingested at
        every :meth:`advance_to` window.
    jsonl_path:
        Optional trace persistence (``append=True`` continues a file, as
        :meth:`resume` does).
    arm:
        Internal: ``False`` builds the injector un-armed for a restore.
    """

    def __init__(
        self,
        spec: FaultCampaignSpec,
        *,
        backend: Optional[str] = None,
        source: Optional[ArrivalSource] = None,
        jsonl_path: Optional[str] = None,
        append: bool = False,
        arm: bool = True,
    ) -> None:
        self.spec = spec
        self.source = source
        self.bus = TraceBus()
        self.memory = MemorySink()
        self.digest = DigestSink()
        self.bus.attach(self.memory)
        self.bus.attach(self.digest)
        self.jsonl: Optional[JsonlSink] = None
        if jsonl_path is not None:
            self.jsonl = JsonlSink(jsonl_path, append=append)
            self.bus.attach(self.jsonl)
        self.sim: DReAMSim
        self.injector: Optional[FailureInjector]
        self.sim, self.injector = build_campaign(
            spec, backend=backend, trace=self.bus, arm=arm
        )
        self.result: Optional[SimulationResult] = None

    @classmethod
    def resume(
        cls,
        snapshot: Snapshot,
        spec: FaultCampaignSpec,
        *,
        backend: Optional[str] = None,
        source: Optional[ArrivalSource] = None,
        prefix_events: Iterable[TraceEvent] = (),
        jsonl_path: Optional[str] = None,
    ) -> "ServiceSimulator":
        """Restore a checkpoint into a fresh service.

        ``spec`` must be the original campaign spec (identical workload
        and fault parameters); ``backend`` may differ from the snapshot's.
        ``prefix_events`` is the trace up to the cut (e.g. the previous
        service's ``memory`` contents, or ``read_jsonl`` of its file) —
        it is re-folded into the new sinks so the resumed digest and
        :meth:`report_view` continue seamlessly, and its digest is
        verified against the checkpoint's.  A JSONL file already holding
        the prefix is continued with ``append=True`` (the prefix is not
        re-written to it).
        """
        svc = cls(
            spec,
            backend=backend,
            source=source,
            jsonl_path=jsonl_path,
            append=True,
            arm=False,
        )
        folded = 0
        for event in prefix_events:
            svc.memory.write(event)
            svc.digest.write(event)
            folded += 1
        if folded and snapshot.trace_digest is not None:
            got = svc.digest.hexdigest()
            if got != snapshot.trace_digest:
                raise SnapshotError(
                    f"trace prefix digest {got} does not match the "
                    f"checkpoint's {snapshot.trace_digest}; the prefix is "
                    "not the stream this snapshot was cut from"
                )
        if snapshot.trace_seq is not None:
            svc.bus.resume_at(snapshot.trace_seq)
        restore_snapshot(snapshot, svc.sim, svc.injector)
        return svc

    # -- driving -----------------------------------------------------------------

    def _ensure_started(self) -> None:
        if not self.sim.started:
            if self.source is not None:
                self.sim.open_ingest()
            self.sim.start()

    def _ingest_sealed(self) -> bool:
        """True once the ingest seam has been closed for good.

        Derived from the simulator's own state (not stored here) so a
        resumed service inherits the seal from its snapshot: a started run
        whose ingest seam is shut never reopens it.
        """
        return self.sim.started and not self.sim.ingest_open

    def advance_to(self, t: int) -> int:
        """Ingest arrivals due by ``t`` and fire everything due by then.

        Returns the number of arrivals ingested this window.  The clock ends
        at the last fired event (not idled forward to ``t``), so a run that
        finishes mid-window seals with exactly the byte stream a straight
        batch run produces.  Call again with a later ``t`` (windows must be
        non-decreasing).
        """
        if self.result is not None:
            raise RuntimeError("service run already finished")
        self._ensure_started()
        taken = 0
        if self.source is not None and not self._ingest_sealed():
            taken = self.sim.ingest(self.source.take_until(t))
            if self.source.exhausted:
                self.sim.close_ingest()
        self.sim.env.run(until=t, idle_advance=False)
        return taken

    def drain(self) -> SimulationResult:
        """Ingest everything left, run to completion, seal the run."""
        if self.result is not None:
            raise RuntimeError("service run already finished")
        self._ensure_started()
        if self.source is not None and not self._ingest_sealed():
            self.sim.ingest(self.source.take_all())
            self.sim.close_ingest()
        self.result = self.sim.run_to_end()
        return self.result

    # -- queries -----------------------------------------------------------------

    def report_view(self) -> ReportView:
        """Table I as of now, replayed from the partial trace.

        The buffered events plus one synthetic ``RunFinished`` (stamped
        like the bus would stamp it, but never emitted) go through the
        exact :class:`TraceReplayer` path the end-of-run report uses.
        """
        events = list(self.memory)
        now = int(self.sim.env.now)
        if self.result is None:
            events.append(
                synthetic_run_finished(
                    seq=self.bus.events_emitted,
                    time=now,
                    ss=self.sim.counters.scheduling_steps,
                    hk=self.sim.counters.housekeeping_steps,
                )
            )
        replayer = TraceReplayer(events).replay()
        return ReportView(
            time=now,
            events_seen=len(self.memory),
            report=replayer.report(),
            resilience=replayer.resilience_report(),
        )

    def checkpoint(self) -> Snapshot:
        """Cut a snapshot at the current (between-events) moment."""
        return snapshot_of(self.sim, self.injector, digest=self.digest.hexdigest())

    def hexdigest(self) -> str:
        """The trace digest so far (the determinism witness)."""
        return self.digest.hexdigest()


__all__ = ["ReportView", "ServiceSimulator"]
