"""Service mode: incremental ingest, mid-run metrics, checkpoint/restore.

The batch driver (:class:`repro.framework.simulator.DReAMSim`) consumes a
complete arrival stream and reports once, at the end.  This package turns
the same simulator into a long-lived *service*:

* :mod:`repro.service.sources` — the :class:`ArrivalSource` seam: tasks
  arrive over time (an SWF trace replayed at its real submit times, a JSONL
  file being appended to by an external producer) instead of as one batch.
* :mod:`repro.service.driver` — :class:`ServiceSimulator`:
  ``advance_to(t)`` / ``drain()`` windows interleaved with ingest, plus
  :meth:`ServiceSimulator.report_view` for Table I queried *mid-run* (the
  partial trace replayed through the exact end-of-run assembly code path).
* :mod:`repro.service.snapshot` — versioned :class:`Snapshot`
  checkpoint/restore: ``restore`` then ``run_to_end`` reproduces the
  uninterrupted run's trace digest and report byte for byte, on any
  backend (DESIGN.md §14; proven by ``tests/snapshot_harness.py``).
"""

from repro.service.driver import ReportView, ServiceSimulator
from repro.service.snapshot import SNAPSHOT_VERSION, Snapshot, SnapshotError, snapshot_of
from repro.service.sources import ArrivalSource, JsonlTailSource, ReplaySource

__all__ = [
    "ArrivalSource",
    "JsonlTailSource",
    "ReplaySource",
    "ReportView",
    "ServiceSimulator",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "snapshot_of",
]
