"""The dreamlint command-line front end, shared by its two entry points.

``tools/dreamlint.py`` (the CI gate, runs from a bare checkout) and the
``dreamsim lint`` subcommand (works from an installed package with no
``tools/`` on disk) both parse the same flags via
:func:`add_lint_arguments` and execute via :func:`run_from_args`, so the
two entry points cannot drift.

Exit codes: 0 = clean, 1 = error findings or baseline drift, 2 = usage
error.  Warnings never gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.lint.core import run_lint
from repro.lint.report import (
    render_baseline_delta,
    render_human,
    render_json,
    render_rules,
    to_json,
)


def default_root() -> Path:
    """The installed package tree — what ``dreamsim lint`` scans by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags on ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="package roots to lint (default: the repro package itself)",
    )
    parser.add_argument("--json", action="store_true", help="emit the JSON report")
    parser.add_argument("--out", metavar="FILE", help="write the report to FILE")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "compare the run against a committed baseline JSON report and "
            "fail with a per-rule, per-file delta on drift"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also list used suppressions"
    )


def run_from_args(
    args: argparse.Namespace, fallback_root: Optional[Path] = None
) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        sys.stdout.write(render_rules())
        return 0

    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [fallback_root if fallback_root is not None else default_root()]
    exit_code = 0
    outputs: list[str] = []
    reports = []
    for path in paths:
        if not path.exists():
            sys.stderr.write(f"dreamlint: no such path: {path}\n")
            return 2
        report = run_lint(path)
        reports.append(report)
        outputs.append(
            render_json(report) if args.json else render_human(report, verbose=args.verbose)
        )
        exit_code = max(exit_code, report.exit_code)

    text = "".join(outputs)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)

    if args.baseline:
        if len(reports) != 1:
            sys.stderr.write("dreamlint: --baseline requires exactly one path\n")
            return 2
        try:
            baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            sys.stderr.write(f"dreamlint: cannot read baseline: {exc}\n")
            return 2
        delta = render_baseline_delta(baseline, to_json(reports[0]))
        if delta:
            sys.stderr.write(delta)
            sys.stderr.write(
                "dreamlint: report drifted from the committed baseline — "
                "regenerate it with --json --out if the change is intended\n"
            )
            exit_code = max(exit_code, 1)

    return exit_code


def main(argv: Optional[list[str]] = None) -> int:
    """Standalone entry point (used by ``tools/dreamlint.py``)."""
    parser = argparse.ArgumentParser(
        prog="dreamlint", description="determinism & accounting linter"
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


__all__ = ["add_lint_arguments", "default_root", "main", "run_from_args"]
