"""Human and JSON rendering of a dreamlint :class:`~repro.lint.core.Report`.

The JSON document is stable (sorted findings, fixed key order via plain
dicts) so a committed baseline (``tools/dreamlint_baseline.json``) diffs
cleanly; the ``generated`` field is deliberately absent — a lint report is a
pure function of the tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.core import RULES, Report, Severity

#: Bumped when the JSON schema changes shape.
REPORT_VERSION = 1


def _stable_root(root: str) -> str:
    """The scan root relative to the working directory when possible.

    Keeps the committed baseline identical across checkouts: running from
    the repo root yields ``src/repro`` on every machine.
    """
    p = Path(root)
    try:
        return p.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


def to_json(report: Report) -> dict[str, object]:
    """The machine-readable report document."""
    return {
        "version": REPORT_VERSION,
        "tool": "dreamlint",
        "root": _stable_root(report.root),
        "files_scanned": len(report.files),
        "rules": [
            {
                "id": rule.id,
                "title": rule.title,
                "severity": rule.severity.value,
            }
            for rule in (RULES[rid] for rid in sorted(RULES))
        ],
        "findings": [f.to_json() for f in report.findings],
        "suppressions": [s.to_json() for s in report.suppressions],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "suppressed": len(report.suppressed),
        },
    }


def render_json(report: Report) -> str:
    """The JSON report as a stable, indented string."""
    return json.dumps(to_json(report), indent=2, sort_keys=False) + "\n"


def render_human(report: Report, verbose: bool = False) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines: list[str] = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity.value}] {f.message}")
    if verbose and report.suppressed:
        lines.append("")
        for f, reason in sorted(report.suppressed, key=lambda p: p[0].sort_key()):
            lines.append(
                f"{f.path}:{f.line}: {f.rule} suppressed ({reason})"
            )
    n_err, n_warn = len(report.errors), len(report.warnings)
    lines.append(
        f"dreamlint: {len(report.files)} files, {n_err} error(s), "
        f"{n_warn} warning(s), {len(report.suppressed)} suppressed"
    )
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """``--list-rules`` output: id, severity, title, rationale."""
    lines = []
    for rid in sorted(RULES):
        rule = RULES[rid]
        lines.append(f"{rule.id} [{rule.severity.value}] {rule.title}")
        if rule.rationale:
            lines.append(f"    {rule.rationale}")
    return "\n".join(lines) + "\n"


def severity_of(name: str) -> Severity:
    """Parse a severity name (CLI helper)."""
    return Severity(name)


__all__ = ["REPORT_VERSION", "render_human", "render_json", "render_rules", "severity_of", "to_json"]
