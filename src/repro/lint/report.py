"""Human and JSON rendering of a dreamlint :class:`~repro.lint.core.Report`.

The JSON document is stable (sorted findings, fixed key order via plain
dicts) so a committed baseline (``tools/dreamlint_baseline.json``) diffs
cleanly; the ``generated`` field is deliberately absent — a lint report is a
pure function of the tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.core import RULES, Report, Severity

#: Bumped when the JSON schema changes shape.
REPORT_VERSION = 1


def _stable_root(root: str) -> str:
    """The scan root relative to the working directory when possible.

    Keeps the committed baseline identical across checkouts: running from
    the repo root yields ``src/repro`` on every machine.
    """
    p = Path(root)
    try:
        return p.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


def to_json(report: Report) -> dict[str, object]:
    """The machine-readable report document."""
    return {
        "version": REPORT_VERSION,
        "tool": "dreamlint",
        "root": _stable_root(report.root),
        "files_scanned": len(report.files),
        "rules": [
            {
                "id": rule.id,
                "title": rule.title,
                "severity": rule.severity.value,
            }
            for rule in (RULES[rid] for rid in sorted(RULES))
        ],
        "findings": [f.to_json() for f in report.findings],
        "suppressions": [s.to_json() for s in report.suppressions],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "suppressed": len(report.suppressed),
        },
    }


def render_json(report: Report) -> str:
    """The JSON report as a stable, indented string."""
    return json.dumps(to_json(report), indent=2, sort_keys=False) + "\n"


def render_human(report: Report, verbose: bool = False) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines: list[str] = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity.value}] {f.message}")
    if verbose and report.suppressed:
        lines.append("")
        for f, reason in sorted(report.suppressed, key=lambda p: p[0].sort_key()):
            lines.append(
                f"{f.path}:{f.line}: {f.rule} suppressed ({reason})"
            )
    n_err, n_warn = len(report.errors), len(report.warnings)
    lines.append(
        f"dreamlint: {len(report.files)} files, {n_err} error(s), "
        f"{n_warn} warning(s), {len(report.suppressed)} suppressed"
    )
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """``--list-rules`` output: id, severity, title, rationale."""
    lines = []
    for rid in sorted(RULES):
        rule = RULES[rid]
        lines.append(f"{rule.id} [{rule.severity.value}] {rule.title}")
        if rule.rationale:
            lines.append(f"    {rule.rationale}")
    return "\n".join(lines) + "\n"


def _finding_line(f: dict) -> str:
    return (
        f"{f.get('path')}:{f.get('line')}:{f.get('col')}: {f.get('rule')} "
        f"[{f.get('severity')}] {f.get('message')}"
    )


def _suppression_line(s: dict) -> str:
    rules = ",".join(s.get("rules", []))
    return f"{s.get('path')}:{s.get('line')}: suppresses {rules} ({s.get('reason')})"


def _delta_section(
    title: str, old: list[dict], new: list[dict], render, group
) -> list[str]:
    """Added/removed entries of one report section, grouped for the log."""
    old_keys = {json.dumps(e, sort_keys=True) for e in old}
    new_keys = {json.dumps(e, sort_keys=True) for e in new}
    added = [e for e in new if json.dumps(e, sort_keys=True) not in old_keys]
    removed = [e for e in old if json.dumps(e, sort_keys=True) not in new_keys]
    if not added and not removed:
        return []
    lines = [f"{title}: +{len(added)} -{len(removed)}"]
    by_group: dict[str, list[str]] = {}
    for sign, entries in (("+", added), ("-", removed)):
        for e in entries:
            by_group.setdefault(group(e), []).append(f"  {sign} {render(e)}")
    for key in sorted(by_group):
        lines.append(f" {key}")
        lines.extend(by_group[key])
    return lines


def render_baseline_delta(old: dict, new: dict) -> str:
    """The per-rule, per-file drift between two JSON reports.

    Empty string when the reports agree; otherwise only the *changed*
    findings and suppressions, grouped by rule id then file — so a
    one-finding drift is one readable stanza in the CI log instead of two
    full JSON dumps.
    """
    lines: list[str] = []
    if old.get("version") != new.get("version"):
        lines.append(
            f"report version changed: {old.get('version')} -> {new.get('version')}"
        )
    old_rules = {r.get("id") for r in old.get("rules", [])}
    new_rules = {r.get("id") for r in new.get("rules", [])}
    for rid in sorted(new_rules - old_rules):
        lines.append(f"rule catalogue: + {rid}")
    for rid in sorted(old_rules - new_rules):
        lines.append(f"rule catalogue: - {rid}")
    lines.extend(
        _delta_section(
            "findings",
            old.get("findings", []),
            new.get("findings", []),
            _finding_line,
            lambda f: f"{f.get('rule')} · {f.get('path')}",
        )
    )
    lines.extend(
        _delta_section(
            "suppressions",
            old.get("suppressions", []),
            new.get("suppressions", []),
            _suppression_line,
            lambda s: ",".join(s.get("rules", [])) + " · " + str(s.get("path")),
        )
    )
    if old.get("files_scanned") != new.get("files_scanned"):
        lines.append(
            f"files scanned: {old.get('files_scanned')} -> {new.get('files_scanned')}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def severity_of(name: str) -> Severity:
    """Parse a severity name (CLI helper)."""
    return Severity(name)


__all__ = [
    "REPORT_VERSION",
    "render_baseline_delta",
    "render_human",
    "render_json",
    "render_rules",
    "severity_of",
    "to_json",
]
