"""``repro.lint`` — dreamlint, the project's determinism & accounting linter.

An AST-based static-analysis pass with project-specific rules (DL001–DL008)
enforcing the conventions the reproduction's bit-exactness guarantees rest
on; see DESIGN.md §11 and ``tools/dreamlint.py`` for the CLI.

>>> from repro.lint import run_lint
>>> report = run_lint("src/repro")          # doctest: +SKIP
>>> report.exit_code                        # doctest: +SKIP
0
"""

from repro.lint.core import (
    Finding,
    META_RULE,
    Report,
    Rule,
    RULES,
    Severity,
    SourceFile,
    Suppression,
    register,
    run_lint,
)
from repro.lint.report import (
    render_baseline_delta,
    render_human,
    render_json,
    render_rules,
    to_json,
)

# Importing the rules modules populates the registry (DL001–DL009 syntactic,
# DL010–DL013 whole-program flow analysis).
from repro.lint import rules as _rules  # noqa: F401
from repro.lint.flow import rules as _flow_rules  # noqa: F401

__all__ = [
    "Finding",
    "META_RULE",
    "Report",
    "Rule",
    "RULES",
    "Severity",
    "SourceFile",
    "Suppression",
    "register",
    "render_baseline_delta",
    "render_human",
    "render_json",
    "render_rules",
    "run_lint",
    "to_json",
]
