"""dreamlint core: findings, suppressions, the rule registry, and the runner.

``dreamlint`` is an AST-based static-analysis pass enforcing the repo's
determinism and accounting conventions (DESIGN.md §11).  The guarantees the
test suite checks dynamically — bit-identical Table I / Fig. 6–10 outputs,
byte-identical golden traces across manager modes, integer-exact fault
accounting — all rest on source-level conventions (no wall-clock, no bare
randomness, no float arithmetic in step/area/tick accounting, trace events
only through the bus).  This module supplies the machinery; the project
rules themselves live in :mod:`repro.lint.rules`.

Suppressions
------------
A finding may be silenced with an inline comment on the offending line::

    x = a / b  # dreamlint: disable=DL002 (load-index keys are float by design)

The parenthesised reason is **mandatory** — a suppression without one is
itself reported as ``DL000``.  Multiple rule ids may be given separated by
commas.  A directive on a line of its own covers the next code line (for
statements too long to carry a trailing comment).  Unused suppressions are
reported as warnings so stale exemptions cannot accumulate.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Type

#: Reserved id for meta findings produced by the framework itself
#: (syntax errors, malformed or reason-less suppression comments).
META_RULE = "DL000"

_SUPPRESS_RE = re.compile(
    r"#\s*dreamlint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"\s*(?:\((?P<reason>[^)]*)\))?"
)


class Severity(enum.Enum):
    """How a finding affects the exit code: errors gate, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: Severity
    path: str  # root-relative posix path
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report order: path, then line, column, rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form for machine-readable reports."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# dreamlint: disable=...`` comment."""

    path: str
    line: int
    rules: frozenset[str]
    reason: str
    used: bool = False

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (the ``used`` flag is runtime-only)."""
        return {
            "path": self.path,
            "line": self.line,
            "rules": sorted(self.rules),
            "reason": self.reason,
        }


@dataclass
class SourceFile:
    """A parsed source file handed to every rule."""

    path: Path  # absolute
    rel: str  # posix path relative to the scan root (module classifier)
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)  # line -> comment
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


class Rule:
    """Base class for dreamlint rules.

    Subclasses set the class attributes and override :meth:`check_file`
    (per-file AST pass) and/or :meth:`check_project` (whole-tree pass, for
    cross-file rules such as taxonomy coverage).
    """

    id: str = "DL999"
    title: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""
    #: How suppressions match findings.  ``"line"`` (default): a directive
    #: on the finding's exact line.  ``"function"``: a directive anywhere
    #: inside the enclosing function also matches — flow rules (DL010+)
    #: report path properties anchored at one representative line (a
    #: return, a def), and forcing the comment onto that exact line would
    #: make suppressions fragile under reformatting.
    suppress_scope: str = "line"

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        """Yield findings for one file; default: none."""
        return iter(())

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        """Yield findings needing the whole tree; default: none."""
        return iter(())

    def finding(
        self, f: SourceFile, node: ast.AST | int, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=f.rel,
            line=line,
            col=col,
            message=message,
        )


#: The global rule registry, populated by the :func:`register` decorator.
RULES: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


@dataclass
class Report:
    """The result of one lint run."""

    root: str
    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _parse_comments(text: str, rel: str) -> tuple[dict[int, str], dict[int, Suppression], list[Finding]]:
    """Extract comments and suppression directives via tokenize."""
    comments: dict[int, str] = {}
    suppressions: dict[int, Suppression] = {}
    meta: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            comments[line] = tok.string
            if "dreamlint:" not in tok.string:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                meta.append(
                    Finding(
                        META_RULE,
                        Severity.ERROR,
                        rel,
                        line,
                        tok.start[1],
                        "malformed dreamlint directive (expected "
                        "'# dreamlint: disable=DLnnn (reason)')",
                    )
                )
                continue
            reason = (m.group("reason") or "").strip()
            rules = frozenset(r.strip() for r in m.group(1).split(","))
            if not reason:
                meta.append(
                    Finding(
                        META_RULE,
                        Severity.ERROR,
                        rel,
                        line,
                        tok.start[1],
                        f"suppression of {', '.join(sorted(rules))} carries no "
                        "reason — write '# dreamlint: disable=DLnnn (why)'",
                    )
                )
                continue
            suppressions[line] = Suppression(rel, line, rules, reason)
    except tokenize.TokenError:
        pass  # the ast.parse error path reports the syntax problem
    return comments, suppressions, meta


def load_file(path: Path, root: Path) -> tuple[Optional[SourceFile], list[Finding]]:
    """Read and parse one file; returns (file, meta-findings)."""
    rel = path.relative_to(root).as_posix() if root in path.parents or path == root else path.name
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return None, [
            Finding(
                META_RULE,
                Severity.ERROR,
                rel,
                exc.lineno or 1,
                exc.offset or 0,
                f"syntax error: {exc.msg}",
            )
        ]
    comments, suppressions, meta = _parse_comments(text, rel)
    return (
        SourceFile(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            comments=comments,
            suppressions=suppressions,
        ),
        meta,
    )


def iter_python_files(root: Path) -> Iterator[Path]:
    """Yield every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def _function_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(start, end) line spans of every function def, decorators included."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            start = min(
                [node.lineno] + [d.lineno for d in node.decorator_list]
            )
            spans.append((start, node.end_lineno or node.lineno))
    return spans


def _innermost_span(
    spans: list[tuple[int, int]], line: int
) -> Optional[tuple[int, int]]:
    """The tightest function span containing ``line``, if any."""
    best: Optional[tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end and (best is None or start > best[0]):
            best = (start, end)
    return best


def run_lint(
    root: Path | str,
    rule_ids: Optional[Iterable[str]] = None,
) -> Report:
    """Lint every Python file under ``root`` with the registered rules.

    ``root`` is both the scan target and the anchor for the root-relative
    paths the module-scoped rules classify on — run it on the package root
    (``src/repro``) for the project rule set to apply as designed.
    """
    # Import for the registration side effect; the registry is module-global.
    from repro.lint import rules as _rules  # noqa: F401  (registers on import)
    from repro.lint.flow import rules as _flow_rules  # noqa: F401

    root = Path(root).resolve()
    active = [
        RULES[rid] for rid in sorted(RULES) if rule_ids is None or rid in set(rule_ids)
    ]
    report = Report(root=str(root))
    files: list[SourceFile] = []
    raw: list[Finding] = []
    for path in iter_python_files(root):
        f, meta = load_file(path, root if root.is_dir() else root.parent)
        raw.extend(meta)
        if f is None:
            continue
        files.append(f)
        report.files.append(f.rel)
        for rule in active:
            raw.extend(rule.check_file(f))

    for rule in active:
        raw.extend(rule.check_project(files, root))

    # Apply suppressions: a finding is silenced when its line carries a
    # directive naming its rule id, or when a standalone directive comment
    # sits directly above it (meta findings cannot be suppressed).  For
    # function-scoped rules (flow analysis: the finding line is one
    # representative point of a whole-path property), a directive anywhere
    # inside the enclosing function matches too.
    by_file = {f.rel: f for f in files}
    effective: dict[str, dict[int, Suppression]] = {}
    for f in files:
        table: dict[int, Suppression] = dict(f.suppressions)
        lines = f.lines
        for line_no, sup in f.suppressions.items():
            if line_no <= len(lines) and lines[line_no - 1].lstrip().startswith("#"):
                # Standalone comment: cover the next non-blank code line.
                nxt = line_no + 1
                while nxt <= len(lines) and (
                    not lines[nxt - 1].strip() or lines[nxt - 1].lstrip().startswith("#")
                ):
                    nxt += 1
                table.setdefault(nxt, sup)
        effective[f.rel] = table
    spans: dict[str, list[tuple[int, int]]] = {
        f.rel: _function_spans(f.tree) for f in files
    }
    for finding in raw:
        sup = None
        src = by_file.get(finding.path)
        if finding.rule != META_RULE and src is not None:
            cand = effective[finding.path].get(finding.line)
            if cand is not None and finding.rule in cand.rules:
                sup = cand
            elif RULES.get(finding.rule) is not None and (
                RULES[finding.rule].suppress_scope == "function"
            ):
                span = _innermost_span(spans[finding.path], finding.line)
                if span is not None:
                    for line_no, cand in effective[finding.path].items():
                        if (
                            span[0] <= line_no <= span[1]
                            and finding.rule in cand.rules
                        ):
                            sup = cand
                            break
        if sup is not None:
            sup.used = True
            report.suppressed.append((finding, sup.reason))
        else:
            report.findings.append(finding)

    # Stale suppressions are warnings: an exemption nothing triggers anymore
    # should be deleted, not silently inherited by future code on that line.
    for f in files:
        for sup in f.suppressions.values():
            report.suppressions.append(sup)
            if not sup.used:
                report.findings.append(
                    Finding(
                        META_RULE,
                        Severity.WARNING,
                        sup.path,
                        sup.line,
                        0,
                        f"unused suppression of {', '.join(sorted(sup.rules))}",
                    )
                )

    report.findings.sort(key=Finding.sort_key)
    report.suppressions.sort(key=lambda s: (s.path, s.line))
    return report


__all__ = [
    "Finding",
    "META_RULE",
    "Report",
    "Rule",
    "RULES",
    "Severity",
    "SourceFile",
    "Suppression",
    "iter_python_files",
    "load_file",
    "register",
    "run_lint",
]
