"""The project rule set: DL001–DL009 (DESIGN.md §11).

Each rule is a small AST visitor over one :class:`~repro.lint.core.SourceFile`
(or, for the cross-file rules DL004/DL006, over the whole tree).  Rules are
scoped by root-relative path, so running the linter on ``src/repro`` applies
each rule exactly to the modules it governs; fixture trees in tests mimic
those paths to exercise the scoping.

Allowlists
----------
DL002's integer-accounting rule carries an explicit allowlist
(:data:`DL002_ALLOW`) for the few places float arithmetic is the *design*:
the Welford statistics accumulators, the GPP slowdown model, the availability
ratio, and the manager's float-keyed load index.  Everything else needs an
inline ``# dreamlint: disable=DL002 (reason)``.  The allowlist maps a
root-relative path to qualified-name prefixes (``"*"`` = whole module).
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.lint.core import Finding, Rule, Severity, SourceFile, register

# ---------------------------------------------------------------------------
# Scoping configuration
# ---------------------------------------------------------------------------

#: Modules whose step/area/tick accounting must stay integer-exact (DL002).
ACCOUNTING_PREFIXES = ("resources/", "model/")
ACCOUNTING_FILES = ("metrics/accumulators.py", "framework/failures.py")

#: DL002 allowlist: root-relative path -> qualname prefixes where float
#: arithmetic is the documented design, not an accounting bug.
DL002_ALLOW: dict[str, frozenset[str]] = {
    # Welford one-pass mean/variance is float statistics by definition.
    "metrics/accumulators.py": frozenset({"*"}),
    # The GPP offload model's slowdown factor is a float multiplier.
    "model/gpp.py": frozenset({"*"}),
    # Availability is a ratio in [0, 1]; integer facts in, float ratio out.
    "framework/failures.py": frozenset({"FailureInjector.availability"}),
    # load_stats() divides the exact integer sums once, on read.
    "resources/manager.py": frozenset({"ResourceInformationManager.load_stats"}),
    # The array manager's load_stats() mirrors the indexed manager's.
    "resources/arraycore.py": frozenset({"ArrayRIM.load_stats"}),
}

#: Modules on hot simulated paths where deepcopy is banned (DL007).
HOT_PREFIXES = ("resources/", "model/", "core/", "sim/", "framework/", "trace/")

#: Files that *implement* a resource manager (DL005): these own the guarded
#: chain/index/aggregate state and may mutate it.  ``manager.py`` is the
#: object-graph implementation; ``arraycore.py`` is the flat-table array
#: backend, whose columns carry the same invariants (checked by
#: ``validate_structures`` and the three-way differential suite).
DL005_OWNERS = frozenset({"resources/manager.py", "resources/arraycore.py"})

#: Manager-owned chain/index/aggregate attributes (DL005): mutating any of
#: these outside the manager implementations (:data:`DL005_OWNERS`) bypasses
#: the ``_track`` guard that keeps the §IV-B redundant views and the I9/I10
#: aggregates exact.
GUARDED_ATTRS = frozenset(
    {
        "_ix_partial",
        "_ix_reclaim",
        "_ix_allidle",
        "_ix_busy",
        "_ix_blank",
        "_ix_idle_entries",
        "_ix_load",
        "_configs_by_area",
        "_idle",
        "_busy",
        "_blank",
        "state_counts",
        "_wasted_total",
        "_configured_total",
        "running_tasks_count",
        "_entries_total",
        "_idle_node_entries",
        "_failed_count",
        "_load_sum_i",
        "_load_sumsq_i",
        "_quarantined",
        "_used_nodes",
        "_node_pos",
        "_chain_seq",
    }
)

_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

_WALLCLOCK_CALLS = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
             "monotonic_ns", "process_time", "process_time_ns"},
    "datetime": {"now", "today", "utcnow"},
    "date": {"today"},
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
}

_INVARIANT_RE = re.compile(r"\bI\d+\b")


def _in_accounting_module(rel: str) -> bool:
    return rel.startswith(ACCOUNTING_PREFIXES) or rel in ACCOUNTING_FILES


def _qualname_allowed(allow: frozenset[str], qualname: str) -> bool:
    if "*" in allow:
        return True
    return any(qualname == a or qualname.startswith(a + ".") for a in allow)


class _QualnameVisitor(ast.NodeVisitor):
    """Base visitor tracking the enclosing class/function qualified name."""

    def __init__(self) -> None:
        self.stack: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self.stack)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)


# ---------------------------------------------------------------------------
# DL001 — no nondeterminism in simulated code
# ---------------------------------------------------------------------------


@register
class NoNondeterminism(Rule):
    """DL001: no wall-clock reads or unseeded randomness in src/repro."""

    id = "DL001"
    title = "no wall-clock or unseeded randomness in src/repro"
    severity = Severity.ERROR
    rationale = (
        "Simulated decisions must depend only on the seeded repro.rng streams "
        "and simulation time; wall-clock reads, bare `random`, id()-ordered "
        "sorts and set-order iteration all break bit-identical replication. "
        "Process pools are nondeterminism too (completion order, os.fork "
        "state): multiprocessing / concurrent.futures may only be touched by "
        "the audited sweep engine under repro/parallel/."
    )

    # Worker management is confined to the sweep engine; anywhere else a
    # pool import is a side channel around its deterministic merge.
    _POOL_MODULES = ("multiprocessing", "concurrent")
    _POOL_EXEMPT_PREFIX = "parallel/"

    def _pool_import(self, f: SourceFile, module: str) -> bool:
        return (
            module.split(".")[0] in self._POOL_MODULES
            and not f.rel.startswith(self._POOL_EXEMPT_PREFIX)
        )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in ("random", "secrets"):
                        yield self.finding(
                            f,
                            node,
                            f"import of {alias.name!r}: use the seeded "
                            "repro.rng streams instead",
                        )
                    elif self._pool_import(f, alias.name):
                        yield self.finding(
                            f,
                            node,
                            f"import of {alias.name!r}: process pools are "
                            "confined to repro.parallel (the deterministic "
                            "sweep engine); go through SweepExecutor",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in ("random", "secrets"):
                    yield self.finding(
                        f,
                        node,
                        f"import from {node.module!r}: use the seeded "
                        "repro.rng streams instead",
                    )
                elif node.module and self._pool_import(f, node.module):
                    yield self.finding(
                        f,
                        node,
                        f"import from {node.module!r}: process pools are "
                        "confined to repro.parallel (the deterministic "
                        "sweep engine); go through SweepExecutor",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(f, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset")
                ):
                    anchor = node if isinstance(node, ast.For) else it
                    yield self.finding(
                        f,
                        anchor,
                        "iteration over a set feeds simulated decisions in "
                        "hash order; iterate a list or sorted() view",
                    )

    def _check_call(self, f: SourceFile, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            owner = self._terminal_name(func.value)
            if owner in ("random", "secrets"):
                yield self.finding(
                    f,
                    node,
                    f"call of {owner}.{attr}: unseeded randomness is banned "
                    "in simulated code (use repro.rng)",
                )
            elif attr in _WALLCLOCK_CALLS.get(owner, ()):
                yield self.finding(
                    f,
                    node,
                    f"call of {owner}.{attr}: wall-clock/nondeterministic "
                    "source in simulated code",
                )
            elif attr == "sort":
                yield from self._check_sort_key(f, node)
        elif isinstance(func, ast.Name) and func.id == "sorted":
            yield from self._check_sort_key(f, node)

    @staticmethod
    def _terminal_name(expr: ast.expr) -> str:
        """Last dotted component of the call receiver (``a.b.c`` -> ``c``)."""
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return ""

    def _check_sort_key(self, f: SourceFile, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) and kw.value.id == "id":
                yield self.finding(
                    f,
                    node,
                    "sort keyed on id(): interpreter-address order is not "
                    "reproducible across runs",
                )


# ---------------------------------------------------------------------------
# DL002 — integer-exact accounting
# ---------------------------------------------------------------------------


@register
class IntegerAccounting(Rule):
    """DL002: no float literals or true division in accounting modules."""

    id = "DL002"
    title = "no float literals/true division in accounting modules"
    severity = Severity.ERROR
    rationale = (
        "Step, area and tick accounting is integer-exact by design (the "
        "golden digests depend on it); float creep is silent corruption. "
        "Documented float surfaces live in DL002_ALLOW; anything else needs "
        "an inline suppression with a reason."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if not _in_accounting_module(f.rel):
            return
        allow = DL002_ALLOW.get(f.rel, frozenset())
        rule = self
        out: list[Finding] = []

        class V(_QualnameVisitor):
            def _flag(self, node: ast.AST, msg: str) -> None:
                if not _qualname_allowed(allow, self.qualname):
                    out.append(rule.finding(f, node, msg))

            def visit_Constant(self, node: ast.Constant) -> None:
                if isinstance(node.value, float):
                    self._flag(node, f"float literal {node.value!r} in accounting module")

            def visit_BinOp(self, node: ast.BinOp) -> None:
                if isinstance(node.op, ast.Div):
                    self._flag(node, "true division (/) in accounting module; use // or Fraction-style integer math")
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                if isinstance(node.op, ast.Div):
                    self._flag(node, "true division (/=) in accounting module")
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Name) and node.func.id == "float":
                    self._flag(node, "float() conversion in accounting module")
                self.generic_visit(node)

        V().visit(f.tree)
        yield from out


# ---------------------------------------------------------------------------
# DL003 — trace events only through the bus
# ---------------------------------------------------------------------------


@register
class TraceViaBus(Rule):
    """DL003: trace events built in trace/ and emitted through TraceBus."""

    id = "DL003"
    title = "trace events constructed in trace/ and emitted via TraceBus only"
    severity = Severity.ERROR
    rationale = (
        "The bus stamps seq/time/ss/hk; an event built or written to a sink "
        "directly skips the stamps and silently breaks the order-sensitive "
        "digest."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if f.rel.startswith("trace/"):
            return
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "TraceEvent":
                yield self.finding(
                    f,
                    node,
                    "TraceEvent constructed outside repro.trace: emit through "
                    "TraceBus.emit so seq/time/ss/hk stamps stay canonical",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "write":
                recv = func.value
                name = recv.id if isinstance(recv, ast.Name) else (
                    recv.attr if isinstance(recv, ast.Attribute) else ""
                )
                if "sink" in name.lower():
                    yield self.finding(
                        f,
                        node,
                        f"direct sink write ({name}.write): events must flow "
                        "through TraceBus.emit",
                    )


# ---------------------------------------------------------------------------
# DL004 — taxonomy coverage (events ↔ replayer ↔ golden traces)
# ---------------------------------------------------------------------------


@register
class TaxonomyCoverage(Rule):
    """DL004: every event type is replayable, exported, and golden-covered."""

    id = "DL004"
    title = "every event type has a replayer handler, export, and golden coverage"
    severity = Severity.ERROR
    rationale = (
        "An event type the replayer does not know would raise on replay (or "
        "worse, be silently skipped if the EVENT_TYPES pass-through hides "
        "it); golden traces that never exercise a type leave its digest path "
        "untested."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        events = next((f for f in files if f.rel == "trace/events.py"), None)
        if events is None:
            return
        members, values = self._event_types(events)
        if not members:
            return
        replay = next((f for f in files if f.rel == "trace/replay.py"), None)
        if replay is None:
            yield self.finding(events, 1, "trace/events.py present but trace/replay.py missing")
            return

        referenced = {
            n.attr for n in ast.walk(replay.tree) if isinstance(n, ast.Attribute)
        } | {n.id for n in ast.walk(replay.tree) if isinstance(n, ast.Name)}
        exported = self._dunder_all(events)
        for name, lineno in members.items():
            if name not in referenced:
                yield self.finding(
                    events,
                    lineno,
                    f"event type {name} has no handler reference in trace/replay.py",
                )
            if exported is not None and name not in exported:
                yield self.finding(
                    events, lineno, f"event type {name} missing from events.__all__"
                )

        golden = self._golden_dir(root)
        if golden is not None:
            seen: set[str] = set()
            for path in sorted(golden.glob("*.jsonl")):
                for line in path.read_text(encoding="utf-8").splitlines():
                    if line:
                        seen.add(json.loads(line)["ev"])
            for name, lineno in members.items():
                wire = values.get(name, name)
                if wire not in seen:
                    yield Finding(
                        self.id,
                        Severity.WARNING,
                        events.rel,
                        lineno,
                        0,
                        f"event type {name} ({wire!r}) appears in no golden "
                        "trace — digest coverage is untested",
                    )

    @staticmethod
    def _event_types(events: SourceFile) -> tuple[dict[str, int], dict[str, str]]:
        """EVENT_TYPES member names (with lines) and their wire strings."""
        values: dict[str, str] = {}
        members: dict[str, int] = {}
        for node in events.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if not isinstance(tgt, ast.Name):
                    continue
                if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
                    values[tgt.id] = node.value.value
                elif tgt.id == "EVENT_TYPES":
                    for n in ast.walk(node.value):
                        if isinstance(n, ast.Name) and n.id != "frozenset":
                            members[n.id] = n.lineno
        return members, values

    @staticmethod
    def _dunder_all(f: SourceFile) -> Optional[set[str]]:
        for node in f.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                return {
                    n.value
                    for n in ast.walk(node.value)
                    if isinstance(n, ast.Constant) and isinstance(n.value, str)
                }
        return None

    @staticmethod
    def _golden_dir(root: Path) -> Optional[Path]:
        for up in (root, *root.parents[:3]):
            cand = up / "tests" / "golden"
            if cand.is_dir():
                return cand
        return None


# ---------------------------------------------------------------------------
# DL005 — chain/index/aggregate mutations only inside the manager
# ---------------------------------------------------------------------------


@register
class GuardedMutation(Rule):
    """DL005: manager-owned state is mutated only inside manager.py."""

    id = "DL005"
    title = "manager-owned chain/index/aggregate state mutated only in the managers"
    severity = Severity.ERROR
    rationale = (
        "The redundant §IV-B views stay consistent because every mutation "
        "runs inside a manager implementation's guarded methods (the indexed "
        "manager's _track, the array manager's column updates); ad-hoc "
        "writes from other modules drift the I9/I10 aggregates."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if f.rel in DL005_OWNERS:
            return

        def guarded(expr: ast.expr) -> Optional[str]:
            """The guarded attribute name if ``expr`` reaches one (possibly
            through subscripts: ``rim._idle[cno]``)."""
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            if isinstance(expr, ast.Attribute) and expr.attr in GUARDED_ATTRS:
                return expr.attr
            return None

        for node in ast.walk(f.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    name = guarded(tgt)
                    # Assigning the attribute itself on `self` in a class that
                    # merely shares a field name is possible but does not
                    # occur; precision over recall is fine here (suppress
                    # with a reason if a false positive ever appears).
                    if name is not None:
                        yield self.finding(
                            f,
                            node,
                            f"write to manager-owned state {name!r} "
                            "outside the resource managers",
                        )
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    name = guarded(tgt)
                    if name is not None:
                        yield self.finding(
                            f,
                            node,
                            f"del on manager-owned state {name!r} "
                            "outside the resource managers",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    name = guarded(func.value)
                    if name is not None:
                        yield self.finding(
                            f,
                            node,
                            f"mutating call {name}.{func.attr}() "
                            "outside the resource managers",
                        )


# ---------------------------------------------------------------------------
# DL006 — invariant names documented
# ---------------------------------------------------------------------------


@register
class InvariantNamesDocumented(Rule):
    """DL006: every I<n> referenced in code is catalogued in invariants.py."""

    id = "DL006"
    title = "every I<n> invariant referenced in code is documented in invariants.py"
    severity = Severity.ERROR
    rationale = (
        "The invariants docstring is the normative catalogue the checker and "
        "the property tests are audited against; an undocumented I<n> is an "
        "invariant nobody reviews."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        inv = next((f for f in files if f.rel == "resources/invariants.py"), None)
        if inv is None:
            return
        doc = ast.get_docstring(inv.tree, clean=False) or ""
        documented = set(_INVARIANT_RE.findall(doc))
        for f in files:
            for lineno, line in enumerate(f.lines, start=1):
                for name in _INVARIANT_RE.findall(line):
                    if name not in documented:
                        yield self.finding(
                            f,
                            lineno,
                            f"invariant {name} referenced here but not "
                            "documented in resources/invariants.py's docstring",
                        )


# ---------------------------------------------------------------------------
# DL007 — no deepcopy on hot simulated paths
# ---------------------------------------------------------------------------


@register
class NoDeepcopyOnHotPaths(Rule):
    """DL007: no copy.deepcopy in hot simulated modules."""

    id = "DL007"
    title = "no copy.deepcopy in hot simulated modules"
    severity = Severity.ERROR
    rationale = (
        "deepcopy walks the whole object graph (nodes hold entries hold "
        "tasks hold configs); one call on a per-event path erases the "
        "indexed-mode speedups and duplicates intrusive-chain state."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if not f.rel.startswith(HOT_PREFIXES):
            return
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_deepcopy = (isinstance(func, ast.Name) and func.id == "deepcopy") or (
                isinstance(func, ast.Attribute) and func.attr == "deepcopy"
            )
            if is_deepcopy:
                yield self.finding(
                    f,
                    node,
                    "copy.deepcopy on a hot simulated path; copy the specific "
                    "fields you need instead",
                )


# ---------------------------------------------------------------------------
# DL008 — complete public type annotations
# ---------------------------------------------------------------------------


@register
class PublicAnnotations(Rule):
    """DL008: public functions carry complete type annotations."""

    id = "DL008"
    title = "public functions carry complete type annotations"
    severity = Severity.ERROR
    rationale = (
        "Strict mypy on the core packages only holds if public surfaces are "
        "fully annotated; unannotated parameters decay to Any and disable "
        "checking at every call site."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        rule = self
        out: list[Finding] = []

        class V(_QualnameVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.func_depth = 0
                self.private_class = False

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                prev = self.private_class
                self.private_class = self.private_class or node.name.startswith("_")
                super().visit_ClassDef(node)
                self.private_class = prev

            def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
                if self.func_depth == 0 and not self.private_class:
                    self._check(node)
                self.func_depth += 1
                super()._visit_func(node)
                self.func_depth -= 1

            def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
                name = node.name
                is_dunder = name.startswith("__") and name.endswith("__")
                if name.startswith("_") and not is_dunder:
                    return
                args = node.args
                missing: list[str] = []
                for a in args.posonlyargs + args.args + args.kwonlyargs:
                    if a.annotation is None and a.arg not in ("self", "cls"):
                        missing.append(a.arg)
                if args.vararg is not None and args.vararg.annotation is None:
                    missing.append("*" + args.vararg.arg)
                if args.kwarg is not None and args.kwarg.annotation is None:
                    missing.append("**" + args.kwarg.arg)
                if node.returns is None:
                    missing.append("return")
                if missing:
                    out.append(
                        rule.finding(
                            f,
                            node,
                            f"public function {self._qual(name)} missing "
                            f"annotations: {', '.join(missing)}",
                        )
                    )

            def _qual(self, name: str) -> str:
                return ".".join([*self.stack, name]) if self.stack else name

        V().visit(f.tree)
        yield from out


# ---------------------------------------------------------------------------
# DL009 — service/ touches foreign state through public hooks only
# ---------------------------------------------------------------------------


@register
class SnapshotViaPublicHooks(Rule):
    """DL009: service/ never reaches into another object's private state."""

    id = "DL009"
    title = "service/ accesses non-self state through public hooks only"
    severity = Severity.ERROR
    rationale = (
        "Checkpoint serialization stays honest only if every byte flows "
        "through the owning manager's public export/restore hooks "
        "(export_state, restore_state, export_task...); a service-layer "
        "read of sim._anything would freeze an internal the owner never "
        "promised to keep, and silently rot when it changes."
    )

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if not f.rel.startswith("service/"):
            return
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_"):
                continue
            if attr.startswith("__") and attr.endswith("__"):
                continue
            recv = node.value
            if isinstance(recv, ast.Name) and recv.id in ("self", "cls"):
                continue
            yield self.finding(
                f,
                node,
                f"private attribute {attr!r} accessed on a non-self "
                "receiver: service/ must go through the owner's public "
                "export/restore hooks",
            )


__all__ = [
    "ACCOUNTING_FILES",
    "ACCOUNTING_PREFIXES",
    "DL002_ALLOW",
    "DL005_OWNERS",
    "GUARDED_ATTRS",
    "HOT_PREFIXES",
    "GuardedMutation",
    "IntegerAccounting",
    "InvariantNamesDocumented",
    "NoDeepcopyOnHotPaths",
    "NoNondeterminism",
    "PublicAnnotations",
    "SnapshotViaPublicHooks",
    "TaxonomyCoverage",
    "TraceViaBus",
]
