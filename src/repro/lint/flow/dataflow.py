"""Dataflow analyses over the flow CFG.

Two analyses live here:

:func:`must_reach`
    A forward all-paths ("must") analysis: at each node, has *every*
    non-exceptional path from the entry passed through a hit node?  The
    meet is logical AND over predecessors; DL011 instantiates ``hit`` with
    its charge-site predicate and reads the answer off the return nodes.

:class:`TaintAnalysis`
    The intraprocedural float-taint lattice DL012 uses: names assigned
    from float literals, true divisions, or ``float()`` calls are tainted;
    ``int()``/``len()``/``round()``/``.hex()``-style conversions sanitize.
    Flow-insensitive over local names (a fixpoint over the function's
    assignments), which is exact enough for the straight-line export and
    emit code it polices and never misses a taint a flow-sensitive pass
    would catch.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from repro.lint.flow.cfg import CFG, ENTRY, LOOPEXIT, CFGNode

# -- must-reach ----------------------------------------------------------------


def contains(node: Optional[ast.AST], pred: Callable[[ast.AST], bool]) -> bool:
    """Does any descendant of ``node`` (inclusive) satisfy ``pred``?

    Descends into nested function/lambda bodies deliberately: the manager
    mutators define local closures (``wipe`` in ``fail_node``) that charge
    on the caller's behalf, and the definition always precedes the call.
    """
    if node is None:
        return False
    return any(pred(n) for n in ast.walk(node))


def must_reach(cfg: CFG, pred: Callable[[ast.AST], bool]) -> list[bool]:
    """Per-node OUT facts: every path to (and through) the node hit ``pred``.

    A ``loopexit`` node counts as a hit when its loop's body contains a hit
    anywhere — the zero-iteration concession documented in
    :mod:`repro.lint.flow.cfg`.
    """

    def node_hits(n: CFGNode) -> bool:
        if n.kind == LOOPEXIT:
            body = n.loop.body if n.loop is not None else []
            return any(contains(s, pred) for s in body)
        return contains(n.payload, pred)

    hits = [node_hits(n) for n in cfg.nodes]
    preds = cfg.preds()
    reachable = [False] * len(cfg.nodes)
    reachable[cfg.entry] = True
    work = [cfg.entry]
    while work:
        i = work.pop()
        for s in cfg.nodes[i].succs:
            if not reachable[s]:
                reachable[s] = True
                work.append(s)
    # Optimistic (all-True) initialisation, then iterate down to the
    # greatest fixpoint — the standard shape for a must-analysis with
    # back edges.
    out = [hits[i] or (cfg.nodes[i].kind != ENTRY) for i in range(len(cfg.nodes))]
    out[cfg.entry] = hits[cfg.entry]
    changed = True
    while changed:
        changed = False
        for i, node in enumerate(cfg.nodes):
            if node.kind == ENTRY or not reachable[i]:
                continue
            ins = [out[p] for p in preds[i] if reachable[p]]
            new = (all(ins) if ins else False) or hits[i]
            if new != out[i]:
                out[i] = new
                changed = True
    return out


def uncharged_returns(cfg: CFG, pred: Callable[[ast.AST], bool]) -> list[CFGNode]:
    """Return nodes some path reaches without ever hitting ``pred``."""
    out = must_reach(cfg, pred)
    return [cfg.nodes[i] for i in cfg.returns() if not out[i]]


# -- float taint ---------------------------------------------------------------

#: Builtin calls whose result is never float-tainted.
SANITIZER_CALLS = frozenset(
    {"int", "len", "round", "bool", "str", "repr", "ord", "hash", "isqrt", "divmod"}
)

#: Method calls (``x.hex()``) that produce a non-float representation, and
#: the integer-producing ``math`` helpers.
SANITIZER_ATTRS = frozenset(
    {"hex", "bit_length", "floor", "ceil", "isqrt", "hexdigest", "join", "format"}
)

#: Calls that *introduce* taint regardless of their arguments.
TAINT_CALLS = frozenset({"float"})


class TaintAnalysis:
    """Which local names of one function may hold float-derived values."""

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        self.tainted: set[str] = set()
        self._solve()

    # -- expression lattice ---------------------------------------------------

    def expr_tainted(self, node: Optional[ast.AST]) -> bool:
        """May this expression evaluate to a float-derived value?"""
        if node is None:
            return False
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True  # true division is float by construction
            return self.expr_tainted(node.left) or self.expr_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self.expr_tainted(v) for v in node.values)
        if isinstance(node, ast.IfExp):
            return self.expr_tainted(node.body) or self.expr_tainted(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.expr_tainted(v) for v in node.values if v is not None)
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Compare):
            return False  # bool
        if isinstance(node, ast.JoinedStr):
            return False  # str
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_tainted(node.elt)
        if isinstance(node, ast.DictComp):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Call):
            return self._call_tainted(node)
        if isinstance(node, ast.Attribute):
            # Attribute loads stop propagation: float-typed *fields* are
            # DL002's jurisdiction (module allowlist there), and chasing
            # them here would re-flag every deliberate accumulator read.
            return False
        return False

    def _call_tainted(self, node: ast.Call) -> bool:
        fn = node.func
        name = None
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
        if name in TAINT_CALLS:
            return True
        if name in SANITIZER_CALLS or name in SANITIZER_ATTRS:
            return False
        # Unknown call: float-preserving by default (min/max/abs/sum...).
        args_tainted = any(self.expr_tainted(a) for a in node.args)
        kw_tainted = any(self.expr_tainted(k.value) for k in node.keywords)
        recv_tainted = (
            self.expr_tainted(fn.value) if isinstance(fn, ast.Attribute) else False
        )
        return args_tainted or kw_tainted or recv_tainted

    # -- name fixpoint --------------------------------------------------------

    def _assignments(self):
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield target, node.value, False
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield node.target, node.value, False
            elif isinstance(node, ast.AugAssign):
                yield node.target, node.value, isinstance(node.op, ast.Div)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.target, node.iter, False
            elif isinstance(node, ast.comprehension):
                yield node.target, node.iter, False
            elif isinstance(node, ast.NamedExpr):
                yield node.target, node.value, False

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value)

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            before = len(self.tainted)
            for target, value, forced in self._assignments():
                if forced or self.expr_tainted(value):
                    self._taint_target(target)
            if len(self.tainted) != before:
                changed = True


__all__ = [
    "SANITIZER_ATTRS",
    "SANITIZER_CALLS",
    "TAINT_CALLS",
    "TaintAnalysis",
    "contains",
    "must_reach",
    "uncharged_returns",
]
