"""Class-local call resolution and the always-charges fixpoint.

DL011's obligation is *interprocedural within a class*: a public query may
delegate its billing to a helper (``find_any_idle_node`` →
``_scan_any_idle_node``), so a call to a same-class method that provably
charges on every non-exceptional path must itself count as a charge site.
The fixpoint below computes that "always charges" set per class:

1. start from the empty set;
2. a method joins the set when (a) its CFG has **no** uncharged return
   under the current charge predicate and (b) it contains at least one
   charge site under that predicate (so a method whose every path raises
   is not vacuously credited);
3. repeat until stable — the set only grows, so this terminates in at
   most ``len(methods)`` rounds.

The concrete charge sites recognised are the two idioms the managers use:
``counters.charge_*()`` calls (the :class:`SearchCounters` API) and direct
``counters.scheduling_steps/housekeeping_steps`` augmented assignments
(the array backend's flat-table style).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict

from repro.lint.flow.cfg import CFG, build_cfg
from repro.lint.flow.dataflow import uncharged_returns
from repro.lint.flow.model import ClassInfo

#: Attribute names of the counter cells the managers bump directly.
STEP_COUNTERS = frozenset({"scheduling_steps", "housekeeping_steps"})


def is_concrete_charge(node: ast.AST) -> bool:
    """A literal charge site: ``x.charge_*(...)`` or ``x.<steps> += n``."""
    if isinstance(node, ast.Call):
        fn = node.func
        return isinstance(fn, ast.Attribute) and fn.attr.startswith("charge_")
    if isinstance(node, ast.AugAssign):
        t = node.target
        return isinstance(t, ast.Attribute) and t.attr in STEP_COUNTERS
    return False


def _charge_pred(always: frozenset[str]) -> Callable[[ast.AST], bool]:
    """Concrete charges plus ``self.m(...)`` calls into ``always``."""

    def pred(node: ast.AST) -> bool:
        if is_concrete_charge(node):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            return (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "self"
                and fn.attr in always
            )
        return False

    return pred


class ChargeModel:
    """Charge facts for one class: CFGs, the fixpoint, and the predicate."""

    def __init__(self, cls: ClassInfo) -> None:
        self.cls = cls
        self.cfgs: Dict[str, CFG] = {
            name: build_cfg(fn.node) for name, fn in cls.functions.items()
        }
        self.always_charges = self._fixpoint()
        self.pred = _charge_pred(self.always_charges)

    def _fixpoint(self) -> frozenset[str]:
        always: frozenset[str] = frozenset()
        while True:
            pred = _charge_pred(always)
            grown = set(always)
            for name, cfg in self.cfgs.items():
                if name in always:
                    continue
                has_site = any(pred(n) for n in ast.walk(cfg.fn))
                if has_site and not uncharged_returns(cfg, pred):
                    grown.add(name)
            if len(grown) == len(always):
                return always
            always = frozenset(grown)

    def uncharged(self, method: str) -> list:
        """Return nodes of ``method`` reachable without a charge, if any."""
        cfg = self.cfgs.get(method)
        if cfg is None:
            return []
        return uncharged_returns(cfg, self.pred)


__all__ = ["ChargeModel", "STEP_COUNTERS", "is_concrete_charge"]
