"""The project model: modules, classes, and per-function summaries.

Built once per lint run from the ``SourceFile`` list the runner already
parsed, and shared by all four flow rules via :func:`build_model`'s
identity-keyed cache.  The model is a *summary* layer: each function is
reduced to the facts the rules consume (self-attribute stores and loads,
direct ``self.method()`` calls, export dict keys, ``state[...]`` reads),
while the raw AST stays attached for the CFG and taint passes that need
statement-level detail.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.lint.core import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """Summary of one method or function."""

    name: str
    node: FunctionNode
    lineno: int
    end_lineno: int
    is_property: bool = False
    decorators: list[str] = field(default_factory=list)
    #: attribute name -> line of the first ``self.X = ...`` / ``self.X op= ...``
    self_stores: dict[str, int] = field(default_factory=dict)
    #: every ``self.X`` reference (load or store), including inside closures
    self_refs: set[str] = field(default_factory=set)
    #: direct ``self.m(...)`` call targets (closures included)
    self_calls: set[str] = field(default_factory=set)
    #: string keys of dict literals in the function's own body
    dict_keys: set[str] = field(default_factory=set)
    #: constant-string subscripts/gets of the first non-self parameter
    param_reads: set[str] = field(default_factory=set)
    #: the first non-self parameter was subscripted with a non-constant key
    dynamic_param_read: bool = False

    @property
    def span(self) -> tuple[int, int]:
        return (self.lineno, self.end_lineno)


@dataclass
class ClassInfo:
    """One class: its methods, keyed by name."""

    name: str
    node: ast.ClassDef
    rel: str  # module path relative to the scan root
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def has_snapshot_hooks(self) -> bool:
        return "export_state" in self.functions and "restore_state" in self.functions

    def persistent_fields(self, exclude: Sequence[str] = ()) -> dict[str, int]:
        """Attributes assigned by any method outside ``exclude``.

        These are the fields an instance carries across events — the set a
        snapshot must account for.  Fields assigned *only* inside the
        excluded hooks belong to the snapshot mechanism itself.
        """
        out: dict[str, int] = {}
        for fn in self.functions.values():
            if fn.name in exclude:
                continue
            for attr, line in fn.self_stores.items():
                out.setdefault(attr, line)
        return out

    def closure(self, name: str, depth: int = 1) -> list[FunctionInfo]:
        """``name`` plus the same-class methods it calls, to ``depth``.

        Depth 1 (the default, used by DL010) covers the hook itself and its
        direct helpers — deep enough to credit index-rebuild helpers such
        as the manager's ``_node_add``, shallow enough that event handlers
        reachable through restore-time resolvers don't dilute the check.
        """
        seen: dict[str, FunctionInfo] = {}
        frontier = [name]
        for _ in range(depth + 1):
            nxt: list[str] = []
            for n in frontier:
                fn = self.functions.get(n)
                if fn is None or n in seen:
                    continue
                seen[n] = fn
                nxt.extend(fn.self_calls)
            frontier = nxt
            if not frontier:
                break
        return list(seen.values())


@dataclass
class ModuleInfo:
    """One parsed module and its top-level classes."""

    rel: str
    source: SourceFile
    classes: dict[str, ClassInfo] = field(default_factory=dict)


@dataclass
class ProjectModel:
    """Everything the flow rules know about the tree."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def iter_classes(self) -> Iterator[ClassInfo]:
        """Every class in every module, in module order."""
        for mod in self.modules.values():
            yield from mod.classes.values()

    def find_class(self, rel: str, name: str) -> Optional[ClassInfo]:
        """Look up a class by module-relative path and name."""
        mod = self.modules.get(rel)
        return mod.classes.get(name) if mod is not None else None


def _decorator_names(node: FunctionNode) -> list[str]:
    names = []
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name):
            names.append(dec.id)
        elif isinstance(dec, ast.Attribute):
            names.append(dec.attr)
        elif isinstance(dec, ast.Call):
            fn = dec.func
            names.append(fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", ""))
    return names


def _first_param(node: FunctionNode) -> Optional[str]:
    """The first parameter after ``self``/``cls`` (the state dict in hooks)."""
    args = [a.arg for a in node.args.posonlyargs + node.args.args]
    args = [a for a in args if a not in ("self", "cls")]
    return args[0] if args else None


class _FunctionSummariser(ast.NodeVisitor):
    """Collect the per-function facts; descends into closures, not classes."""

    def __init__(self, info: FunctionInfo, param: Optional[str]) -> None:
        self.info = info
        self.param = param

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes summarise separately, if ever needed

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self.info.self_refs.add(node.attr)
            if isinstance(node.ctx, ast.Store):
                self.info.self_stores.setdefault(node.attr, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "self"
        ):
            self.info.self_calls.add(fn.attr)
        if (
            self.param is not None
            and isinstance(fn, ast.Attribute)
            and fn.attr == "get"
            and isinstance(fn.value, ast.Name)
            and fn.value.id == self.param
            and node.args
        ):
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.info.param_reads.add(key.value)
            else:
                self.info.dynamic_param_read = True
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.info.dict_keys.add(key.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self.param is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == self.param
        ):
            sl = node.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                self.info.param_reads.add(sl.value)
            else:
                self.info.dynamic_param_read = True
        self.generic_visit(node)


def summarise_function(node: FunctionNode) -> FunctionInfo:
    """Build the :class:`FunctionInfo` summary for one method."""
    decorators = _decorator_names(node)
    info = FunctionInfo(
        name=node.name,
        node=node,
        lineno=node.lineno,
        end_lineno=node.end_lineno or node.lineno,
        is_property="property" in decorators or "cached_property" in decorators,
        decorators=decorators,
    )
    visitor = _FunctionSummariser(info, _first_param(node))
    for stmt in node.body:
        visitor.visit(stmt)
    return info


def _summarise_class(node: ast.ClassDef, rel: str) -> ClassInfo:
    cls = ClassInfo(name=node.name, node=node, rel=rel)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # setter/getter pairs: keep the first definition (the getter).
            cls.functions.setdefault(stmt.name, summarise_function(stmt))
    return cls


def _build(files: Sequence[SourceFile]) -> ProjectModel:
    model = ProjectModel()
    for f in files:
        mod = ModuleInfo(rel=f.rel, source=f)
        for stmt in f.tree.body:
            if isinstance(stmt, ast.ClassDef):
                mod.classes[stmt.name] = _summarise_class(stmt, f.rel)
        model.modules[f.rel] = mod
    return model


# One-entry cache keyed on the identity of the runner's file list: run_lint
# loads every file once and hands the same list object to every rule, so all
# four flow rules share a single model build per run.
_cache: Optional[tuple[int, int, ProjectModel]] = None


def build_model(files: Sequence[SourceFile]) -> ProjectModel:
    """The (cached) project model for this lint run's file list."""
    global _cache
    key = (id(files), len(files))
    if _cache is not None and _cache[:2] == key:
        return _cache[2]
    model = _build(files)
    _cache = (key[0], key[1], model)
    return model


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_model",
    "summarise_function",
]
