"""The whole-program flow rules: DL010–DL013 (DESIGN.md §15).

Each rule is a ``check_project`` pass over the shared
:class:`~repro.lint.flow.model.ProjectModel` (built once per run and
cached), so adding all four costs one model build plus per-rule analysis.
Findings are *function-scoped* for suppression purposes: a
``# dreamlint: disable=DL01x (reason)`` anywhere inside the enclosing
function (or on the exact finding line) silences them, because a flow
finding describes a property of a whole path, not of one token.

Allowlist policy: a field, branch, or member lands in an allowlist below
only with a written reason, and the reason must describe *why the
deviation is the design* — "the linter is wrong" is not a reason.  The
golden-trace suites pin the step accounting, so an uncharged branch that
is genuinely reference behaviour (a full-queue rejection, a read-side
view) is allowlisted rather than "fixed" into a digest change.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.lint.core import Finding, Rule, SourceFile, register
from repro.lint.flow.callgraph import ChargeModel
from repro.lint.flow.dataflow import TaintAnalysis
from repro.lint.flow.model import ClassInfo, FunctionInfo, build_model

# -- DL010: snapshot-field coverage -------------------------------------------

#: The hook names forming the snapshot protocol.  Fields assigned *only*
#: inside these belong to the mechanism, not to the persistent state.
EXPORT_HOOKS = ("export_state",)
RESTORE_HOOKS = ("restore_state", "restore_scrub_tasks")

#: Persistent-looking fields that deliberately do not round-trip.
#: Keyed by ``<module rel path>::<class>`` → {field: reason}.  Reasons are
#: part of the contract: they say why skipping the field preserves the
#: byte-identical restore guarantee proven by tests/snapshot_harness.py.
_CONSTRUCTION = (
    "construction parameter: restore targets a freshly built identical "
    "system (DESIGN.md §14), so the value is re-supplied by the builder"
)
_DERIVED_STATIC = (
    "derived once from the construction-time node/config lists, which "
    "restore never changes"
)
_OBSERVABILITY = (
    "per-run observability series, outside the restore contract — restarts "
    "empty on resume and never feeds trace digests or the Table I report"
)
DL010_ALLOW: dict[str, dict[str, str]] = {
    "framework/failures.py::FailureInjector": {
        # export_state's docstring is explicit: "Parameters do NOT travel" —
        # the injector is rebuilt with the original campaign spec and only
        # the dynamic process state (events, open windows, rng) restores.
        field: _CONSTRUCTION
        for field in (
            "mtbf",
            "mttr",
            "max_failures",
            "seu_rate",
            "scrub_factor",
            "retry_budget",
            "backoff_base",
            "backoff_cap",
            "burst_rate",
            "burst_size",
            "burst_group",
            "health_half_life",
            "quarantine_threshold",
            "probation",
        )
    },
    "framework/monitoring.py::Monitor": {
        "min_interval": _CONSTRUCTION,
        "trace": _CONSTRUCTION,
        "samples": _OBSERVABILITY,
        "busy_nodes": _OBSERVABILITY,
        "queue_length": _OBSERVABILITY,
        "wasted_area": _OBSERVABILITY,
        "running_tasks": _OBSERVABILITY,
    },
    "framework/simulator.py::DReAMSim": {
        "backend": _CONSTRUCTION,
        "load": "stateless balancing view over the rim; holds no state of its own",
        "_debug_every": _CONSTRUCTION,
        "_final_value": (
            "set by run() after completion; snapshots are only cut mid-run "
            "(snapshot_of requires a started, unfinished simulation)"
        ),
        "_config_by_no": _DERIVED_STATIC,
    },
    "model/gpp.py::GppPool": {
        "count": _CONSTRUCTION,
        "cores": _CONSTRUCTION,
        "slowdown": _CONSTRUCTION,
        "network_delay": _CONSTRUCTION,
    },
    "resources/manager.py::ResourceInformationManager": {
        "counters": _CONSTRUCTION,
        "indexed": _CONSTRUCTION,
        "trace": _CONSTRUCTION,
        "_configs_by_area": _DERIVED_STATIC,
        "_homogeneous": _DERIVED_STATIC,
        "_load_den": _DERIVED_STATIC,
        "_load_den_sq": _DERIVED_STATIC,
        "on_quarantine_release": (
            "callback slot wired by the failure injector when it arms; "
            "restore_snapshot requires an un-armed injector and re-wires it"
        ),
    },
    "resources/arraycore.py::ArrayRIM": {
        "configs": _CONSTRUCTION,
        "counters": _CONSTRUCTION,
        "trace": _CONSTRUCTION,
        "_cfg_keys": _DERIVED_STATIC,
        "_pos": _DERIVED_STATIC,
        "_load_den": _DERIVED_STATIC,
        "_load_den_sq": _DERIVED_STATIC,
        "on_quarantine_release": (
            "callback slot wired by the failure injector when it arms; "
            "restore_snapshot requires an un-armed injector and re-wires it"
        ),
    },
    "resources/susqueue.py::SuspensionQueue": {
        "counters": _CONSTRUCTION,
        "trace": _CONSTRUCTION,
        "max_retries": _CONSTRUCTION,
        "max_length": _CONSTRUCTION,
        "order": _CONSTRUCTION,
    },
    "resources/arraycore.py::ArraySuspensionQueue": {
        "counters": _CONSTRUCTION,
        "trace": _CONSTRUCTION,
        "max_retries": _CONSTRUCTION,
        "max_length": _CONSTRUCTION,
        "order": _CONSTRUCTION,
        "_free": (
            "slot free-list: restore rebuilds the columns compactly, so the "
            "free list is empty by construction after a restore"
        ),
    },
}

#: Exported keys read by a restore helper other than the hook itself, or
#: consumed structurally (e.g. verified rather than assigned).  Same shape
#: as DL010_ALLOW, keyed by exported key name.
DL010_KEY_ALLOW: dict[str, dict[str, str]] = {}


def _class_key(cls: ClassInfo) -> str:
    return f"{cls.rel}::{cls.name}"


def _restore_refs(cls: ClassInfo) -> set[str]:
    """Attributes the restore hooks (plus direct helpers) touch."""
    refs: set[str] = set()
    for hook in RESTORE_HOOKS:
        if hook in cls.functions:
            for fn in cls.closure(hook, depth=1):
                refs |= fn.self_refs
    return refs


def _export_top_keys(fn: FunctionInfo) -> Optional[set[str]]:
    """The top-level keys of the dict an export hook returns.

    Handles the two shapes in the tree: ``return { ... }`` directly, and a
    local ``state = { ... }`` (plus later ``state["k"] = ...`` stores) that
    is then returned.  Returns ``None`` when the shape is something else —
    the key-parity check then stands down for that class.
    """
    returned: Optional[str] = None
    ret_dict: Optional[ast.Dict] = None
    for stmt in ast.walk(fn.node):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if isinstance(stmt.value, ast.Dict):
                ret_dict = stmt.value
            elif isinstance(stmt.value, ast.Name):
                returned = stmt.value.id
    keys: set[str] = set()
    if ret_dict is not None:
        dicts = [ret_dict]
    elif returned is not None:
        dicts = [
            s.value
            for s in ast.walk(fn.node)
            if isinstance(s, ast.Assign)
            and isinstance(s.value, ast.Dict)
            and any(
                isinstance(t, ast.Name) and t.id == returned for t in s.targets
            )
        ]
        for s in ast.walk(fn.node):
            if (
                isinstance(s, ast.Assign)
                and len(s.targets) == 1
                and isinstance(s.targets[0], ast.Subscript)
                and isinstance(s.targets[0].value, ast.Name)
                and s.targets[0].value.id == returned
                and isinstance(s.targets[0].slice, ast.Constant)
                and isinstance(s.targets[0].slice.value, str)
            ):
                keys.add(s.targets[0].slice.value)
        if not dicts:
            return None
    else:
        return None
    for d in dicts:
        for k in d.keys:
            if isinstance(k, ast.Constant) and isinstance(k.value, str):
                keys.add(k.value)
            else:
                return None  # computed keys: parity cannot be checked
    return keys


@register
class SnapshotFieldCoverage(Rule):
    """DL010: every persistent field round-trips through the snapshot hooks."""

    id = "DL010"
    title = "snapshot-persistent fields must round-trip through restore_state"
    suppress_scope = "function"
    rationale = (
        "A field assigned by __init__ or a mutator but never touched by "
        "restore_state silently resets on resume — the exact bug class the "
        "byte-identical restore guarantee (DESIGN.md §14) forbids.  Derived "
        "caches that restore rebuilds indirectly belong in DL010_ALLOW with "
        "a reason."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        model = build_model(files)
        by_rel = {f.rel: f for f in files}
        for cls in model.iter_classes():
            if not cls.has_snapshot_hooks:
                continue
            f = by_rel[cls.rel]
            allow = DL010_ALLOW.get(_class_key(cls), {})
            refs = _restore_refs(cls)
            hooks = EXPORT_HOOKS + RESTORE_HOOKS
            for field, line in sorted(cls.persistent_fields(exclude=hooks).items()):
                if field in refs or field in allow:
                    continue
                yield self.finding(
                    f,
                    line,
                    f"{cls.name}.{field} is assigned here but never referenced "
                    "by restore_state (or its direct helpers) — the field will "
                    "not survive a snapshot/restore cycle; restore it or add "
                    "it to DL010_ALLOW with a reason",
                )
            yield from self._key_parity(f, cls)

    def _key_parity(self, f: SourceFile, cls: ClassInfo) -> Iterator[Finding]:
        export = cls.functions["export_state"]
        restore = cls.functions["restore_state"]
        if restore.dynamic_param_read:
            return  # restore walks keys dynamically; parity is untrackable
        exported = _export_top_keys(export)
        if exported is None:
            return
        read = set(restore.param_reads)
        for hook in RESTORE_HOOKS[1:]:
            if hook in cls.functions:
                read |= cls.functions[hook].param_reads
        key_allow = DL010_KEY_ALLOW.get(_class_key(cls), {})
        for key in sorted(exported - read - set(key_allow)):
            yield self.finding(
                f,
                export.node,
                f"{cls.name}.export_state exports key '{key}' but "
                "restore_state never reads it — either dead snapshot weight "
                "or a field that silently fails to restore",
            )


# -- DL011: charge-on-all-paths -----------------------------------------------

#: Manager methods that must bill simulated steps on every non-exceptional
#: return path.  Peek/read-side views (peek_*, config_with_no, load_stats,
#: node_count_by_state, total_configured_area, bump_health, quarantine
#: predicates) are deliberately uncharged O(1) observability surfaces;
#: total_wasted_area charges only when the caller opts in (charge=True);
#: export/restore are out-of-band service machinery.
MANAGER_CHARGED = frozenset(
    {
        "find_preferred_config",
        "find_closest_config",
        "find_best_idle_entry",
        "find_best_blank_node",
        "find_best_partially_blank_node",
        "find_any_idle_node",
        "busy_candidate_exists",
        "find_quarantined_host",
        "configure_node",
        "assign_task",
        "complete_task",
        "evict_entries",
        "blank_node",
        "fail_node",
        "repair_node",
        "seu_corrupt",
        "finish_scrub",
        "release_quarantined",
    }
)

#: Suspension-queue methods with the same obligation.  first_with_key and
#: collect_suitable delegate the charging decision to the caller by
#: contract (the scheduler bills the enclosing scan); expired and
#: record_for_task are uncharged bookkeeping reads.
SUSQUEUE_CHARGED = frozenset(
    {"add", "remove", "search", "charge_full_scan", "first_matching_key"}
)

#: (module rel path, class name) → the methods under obligation.
DL011_METHODS: dict[tuple[str, str], frozenset[str]] = {
    ("resources/manager.py", "ResourceInformationManager"): MANAGER_CHARGED,
    ("resources/arraycore.py", "ArrayRIM"): MANAGER_CHARGED,
    ("resources/susqueue.py", "SuspensionQueue"): SUSQUEUE_CHARGED,
    ("resources/arraycore.py", "ArraySuspensionQueue"): SUSQUEUE_CHARGED,
}


@register
class ChargeOnAllPaths(Rule):
    """DL011: manager queries bill steps on every non-exceptional path."""

    id = "DL011"
    title = "resource-manager queries must charge steps on every return path"
    suppress_scope = "function"
    rationale = (
        "An early return that skips the step charge diverges the ss/hk "
        "counters — and with them every trace stamp and golden digest — "
        "only on the inputs that hit the branch (the bug class PR 1 fixed "
        "by hand in find_any_idle_node).  A loop whose body charges counts "
        "as charging on the zero-iteration exit (per-element cost is the "
        "reference semantics); raise paths are exempt; calls into same-"
        "class methods that always charge are credited via a fixpoint."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        model = build_model(files)
        by_rel = {f.rel: f for f in files}
        for (rel, cls_name), methods in sorted(DL011_METHODS.items()):
            cls = model.find_class(rel, cls_name)
            if cls is None:
                continue  # DL013 reports missing backends
            f = by_rel[rel]
            charges = ChargeModel(cls)
            for method in sorted(methods & set(cls.functions)):
                fn = cls.functions[method]
                for node in charges.uncharged(method):
                    anchor = node.stmt if node.stmt is not None else fn.node
                    where = (
                        "can fall off the end"
                        if node.stmt is None
                        else "has a return path"
                    )
                    yield self.finding(
                        f,
                        anchor,
                        f"{cls_name}.{method} {where} that never charges "
                        "simulated steps (no counters.charge_* call or "
                        "step-counter increment reaches it)",
                    )


# -- DL012: float-taint contagion ---------------------------------------------

#: Modules whose emit calls are exempt: the bus itself stamps events.
TAINT_EXEMPT_PREFIXES = ("trace/",)


@register
class FloatTaintContagion(Rule):
    """DL012: float-derived values must not reach events or snapshots."""

    id = "DL012"
    title = "float-tainted values must not flow into events, charges, or snapshots"
    suppress_scope = "function"
    rationale = (
        "DL002 bans float syntax in the accounting modules; this rule "
        "follows the values.  A float that reaches a trace-event field, a "
        "step charge, or an export_state payload poisons byte-identical "
        "digests and JSON snapshots across platforms.  int()/len()/round()/"
        ".hex() conversions sanitize (the hex round-trip is the sanctioned "
        "way to persist a float exactly)."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        from repro.lint.flow.model import summarise_function

        model = build_model(files)
        by_rel = {f.rel: f for f in files}
        for cls in model.iter_classes():
            f = by_rel[cls.rel]
            for fn in cls.functions.values():
                yield from self._check_function(f, cls.name, fn)
        for f in files:  # module-level functions emit and export too
            for stmt in f.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(
                        f, f.rel, summarise_function(stmt)
                    )

    def _check_function(
        self, f: SourceFile, owner: str, fn: FunctionInfo
    ) -> Iterator[Finding]:
        taint = TaintAnalysis(fn.node)
        exempt_emit = f.rel.startswith(TAINT_EXEMPT_PREFIXES)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr == "emit" and not exempt_emit:
                    for kw in node.keywords:
                        if kw.arg is not None and taint.expr_tainted(kw.value):
                            yield self.finding(
                                f,
                                kw.value,
                                f"float-tainted value flows into trace-event "
                                f"field '{kw.arg}' of {owner}.{fn.name} — "
                                "convert with int()/round() or persist via "
                                ".hex()",
                            )
                elif attr.startswith("charge_"):
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        if taint.expr_tainted(arg):
                            yield self.finding(
                                f,
                                arg,
                                f"float-tainted step count passed to "
                                f"{attr}() in {owner}.{fn.name} — step "
                                "charges are integer-exact by contract",
                            )
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr in ("scheduling_steps", "housekeeping_steps")
                and taint.expr_tainted(node.value)
            ):
                yield self.finding(
                    f,
                    node,
                    f"float-tainted increment of {node.target.attr} in "
                    f"{owner}.{fn.name} — step counters are integers",
                )
            elif (
                isinstance(node, ast.Return)
                and fn.name in EXPORT_HOOKS
                and taint.expr_tainted(node.value)
            ):
                yield self.finding(
                    f,
                    node,
                    f"float-tainted value in the {owner}.export_state "
                    "payload — snapshots persist floats via .hex() only",
                )


# -- DL013: backend API parity ------------------------------------------------

#: The dunder surface that is part of the backend contract.
PARITY_DUNDERS = frozenset({"__init__", "__len__", "__bool__", "__iter__", "__contains__"})

#: (reference class, substitute class) pairs behind create_manager().
DL013_PAIRS: tuple[tuple[tuple[str, str], tuple[str, str]], ...] = (
    (
        ("resources/manager.py", "ResourceInformationManager"),
        ("resources/arraycore.py", "ArrayRIM"),
    ),
    (
        ("resources/susqueue.py", "SuspensionQueue"),
        ("resources/arraycore.py", "ArraySuspensionQueue"),
    ),
)

#: Sanctioned asymmetries, keyed by (reference, substitute) class names.
DL013_ALLOW: dict[tuple[str, str], dict[str, str]] = {
    ("ResourceInformationManager", "ArrayRIM"): {
        "__init__": (
            "the reference manager's `indexed` knob selects its scan vs "
            "indexed mode; create_manager() normalises the constructor call"
        ),
        "validate_structures": (
            "array-backend-only deep invariant checker used by the "
            "differential suite; never called through the manager protocol"
        ),
    },
    ("SuspensionQueue", "ArraySuspensionQueue"): {
        "task_of": (
            "array-backend-only accessor resolving its integer slot handles "
            "to tasks; the reference queue's records carry the task directly"
        ),
    },
}


def _signature(fn: FunctionInfo) -> tuple[tuple[str, str, bool], ...]:
    """Comparable signature: (name, kind, has_default) per parameter.

    Annotations and default *values* are excluded on purpose — return
    types legitimately differ (records vs integer slots) and defaults are
    compared by presence, not value, since create_manager() supplies them.
    """
    a = fn.node.args
    out: list[tuple[str, str, bool]] = []
    pos = a.posonlyargs + a.args
    n_def = len(a.defaults)
    for i, arg in enumerate(pos):
        if arg.arg in ("self", "cls"):
            continue
        out.append((arg.arg, "positional", i >= len(pos) - n_def))
    if a.vararg is not None:
        out.append((a.vararg.arg, "vararg", False))
    for arg, default in zip(a.kwonlyargs, a.kw_defaults):
        out.append((arg.arg, "keyword-only", default is not None))
    if a.kwarg is not None:
        out.append((a.kwarg.arg, "kwarg", False))
    return tuple(out)


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name in PARITY_DUNDERS


@register
class BackendParity(Rule):
    """DL013: interchangeable backends expose identical public signatures."""

    id = "DL013"
    title = "manager/susqueue backends must expose identical public APIs"
    suppress_scope = "function"
    rationale = (
        "create_manager(backend=...) substitutes these classes for each "
        "other; a method present on one backend only, or with a different "
        "parameter list, makes the substitution silently unsound for any "
        "caller exercising it.  Sanctioned asymmetries live in DL013_ALLOW "
        "with reasons."
    )

    def check_project(self, files: Sequence[SourceFile], root: Path) -> Iterator[Finding]:
        model = build_model(files)
        by_rel = {f.rel: f for f in files}
        for (ref_loc, sub_loc) in DL013_PAIRS:
            ref = model.find_class(*ref_loc)
            sub = model.find_class(*sub_loc)
            if ref is None or sub is None:
                continue  # the class moved; model scoping rots loudly in tests
            allow = DL013_ALLOW.get((ref.name, sub.name), {})
            ref_pub = {n for n in ref.functions if _is_public(n)}
            sub_pub = {n for n in sub.functions if _is_public(n)}
            for name in sorted((ref_pub ^ sub_pub) - set(allow)):
                present, absent = (ref, sub) if name in ref_pub else (sub, ref)
                f = by_rel[present.rel]
                yield self.finding(
                    f,
                    present.functions[name].node,
                    f"{present.name}.{name} has no counterpart on "
                    f"{absent.name} — backend substitution via "
                    "create_manager() is unsound for callers using it",
                )
            for name in sorted((ref_pub & sub_pub) - set(allow)):
                rf, sf = ref.functions[name], sub.functions[name]
                f = by_rel[sub.rel]
                if rf.is_property != sf.is_property:
                    kinds = ("property" if sf.is_property else "method",
                             "property" if rf.is_property else "method")
                    yield self.finding(
                        f,
                        sf.node,
                        f"{sub.name}.{name} is a {kinds[0]} but "
                        f"{ref.name}.{name} is a {kinds[1]}",
                    )
                    continue
                if _signature(rf) != _signature(sf):
                    yield self.finding(
                        f,
                        sf.node,
                        f"{sub.name}.{name} signature differs from "
                        f"{ref.name}.{name}: "
                        f"{_render_sig(sf)} vs {_render_sig(rf)}",
                    )


def _render_sig(fn: FunctionInfo) -> str:
    parts = []
    for name, kind, has_default in _signature(fn):
        prefix = {"vararg": "*", "kwarg": "**"}.get(kind, "")
        parts.append(f"{prefix}{name}{'=…' if has_default else ''}")
    return "(" + ", ".join(parts) + ")"


__all__ = [
    "BackendParity",
    "ChargeOnAllPaths",
    "DL010_ALLOW",
    "DL010_KEY_ALLOW",
    "DL011_METHODS",
    "DL013_ALLOW",
    "DL013_PAIRS",
    "FloatTaintContagion",
    "MANAGER_CHARGED",
    "SUSQUEUE_CHARGED",
    "SnapshotFieldCoverage",
]
