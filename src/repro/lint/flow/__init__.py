"""``repro.lint.flow`` — the whole-program analysis engine behind DL010–DL013.

dreamlint v1 (DESIGN.md §11) is a per-file syntactic pass; the rules in
this subpackage reason about the *program*: which attributes a class
persists, which snapshot hooks round-trip them, whether every return path
of a manager query bills simulated steps, and whether the interchangeable
backends actually expose the same surface.  The engine is deliberately
small and stdlib-only:

``model``
    A project model built once per lint run from the already-parsed
    :class:`~repro.lint.core.SourceFile` list — modules, classes, and
    per-function summaries (self-attribute stores/loads, self-calls,
    export dict keys, ``state[...]`` reads).  Cached on the identity of
    the file list so all four flow rules share one build (the perf budget
    in ``tools/perf.py`` depends on this).
``cfg``
    A per-function control-flow graph at statement granularity, with
    explicit return/raise exits and loop-exit markers.
``dataflow``
    A forward all-paths ("must") worklist analysis over the CFG, plus the
    intraprocedural float-taint lattice DL012 uses.
``callgraph``
    Class-local ``self.method()`` resolution and the always-charges
    fixpoint DL011 needs to credit helper calls.
``rules``
    The four flow rules themselves (DL010–DL013) with their allowlists.

See DESIGN.md §15 for the rule semantics and the allowlist policy.
"""

from repro.lint.flow.model import ProjectModel, build_model

__all__ = ["ProjectModel", "build_model"]
