"""Per-function control-flow graphs at statement granularity.

Each simple statement becomes one node; compound statements contribute
structure (edges) rather than nodes of their own.  The shapes the rules
care about are modelled explicitly:

* ``return`` statements and the implicit fall-off-the-end return are
  distinct node kinds, so an all-paths analysis can interrogate exactly
  the non-exceptional exits;
* ``raise`` ends its path without reaching the exit — exceptional paths
  are exempt from the charge obligation (DESIGN.md §15);
* every loop exit passes through a synthetic ``loopexit`` node carrying a
  reference to the loop statement.  DL011 treats a loop whose body
  charges as charging on the zero-iteration exit too: per-element cost is
  the reference semantics (zero candidates → zero steps), so the analysis
  credits the exit edge when the body contains a charge site.

``try`` is handled conservatively: each handler is entered from the state
at the ``try`` head (as if the first body statement raised), which is the
pessimistic assumption for a must-analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Node kinds.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
RETURN = "return"
IMPLICIT_RETURN = "implicit_return"
LOOPEXIT = "loopexit"


@dataclass
class CFGNode:
    """One node: a simple statement, an exit, or a synthetic marker.

    Compound statements (``if``/``for``/``while``/``with``/``match``)
    contribute a *head* node holding only their test/iterator expression in
    ``expr`` — never the body, which lowers to its own nodes — so a
    predicate walking a node's AST payload sees exactly the code that
    executes at that point.
    """

    kind: str
    stmt: Optional[ast.stmt] = None
    expr: Optional[ast.AST] = None  # compound-statement head payload
    loop: Optional[ast.stmt] = None  # the loop a LOOPEXIT node belongs to
    succs: list[int] = field(default_factory=list)

    @property
    def payload(self) -> Optional[ast.AST]:
        """The AST that executes at this node (statement or head expr)."""
        return self.stmt if self.stmt is not None else self.expr


@dataclass
class CFG:
    """The graph for one function."""

    fn: FunctionNode
    nodes: list[CFGNode] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def add(self, node: CFGNode) -> int:
        """Append a node; returns its index."""
        self.nodes.append(node)
        return len(self.nodes) - 1

    def link(self, src: int, dst: int) -> None:
        """Add the edge ``src -> dst`` (idempotent)."""
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)

    def preds(self) -> list[list[int]]:
        """Predecessor lists, indexed like ``nodes``."""
        table: list[list[int]] = [[] for _ in self.nodes]
        for i, node in enumerate(self.nodes):
            for s in node.succs:
                table[s].append(i)
        return table

    def returns(self) -> list[int]:
        """Indices of every explicit and implicit return node."""
        return [
            i
            for i, n in enumerate(self.nodes)
            if n.kind in (RETURN, IMPLICIT_RETURN)
        ]


class _Builder:
    def __init__(self, fn: FunctionNode) -> None:
        self.cfg = CFG(fn=fn)
        self.cfg.add(CFGNode(ENTRY))
        self.cfg.add(CFGNode(EXIT))
        # (break targets, continue targets) for the enclosing loop.
        self.loop_stack: list[tuple[int, int]] = []

    def build(self) -> CFG:
        tails = self._body(self.cfg.fn.body, [self.cfg.entry])
        if tails:
            # Fall off the end: the implicit ``return None``.
            implicit = self.cfg.add(
                CFGNode(IMPLICIT_RETURN, stmt=None)
            )
            for t in tails:
                self.cfg.link(t, implicit)
            self.cfg.link(implicit, self.cfg.exit)
        return self.cfg

    # -- lowering -------------------------------------------------------------

    def _body(self, stmts: list[ast.stmt], tails: list[int]) -> list[int]:
        """Lower a statement list; returns the fall-through tail nodes."""
        for stmt in stmts:
            if not tails:
                break  # unreachable code after return/raise/break
            tails = self._stmt(stmt, tails)
        return tails

    def _stmt(self, stmt: ast.stmt, tails: list[int]) -> list[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            node = cfg.add(CFGNode(RETURN, stmt=stmt))
            for t in tails:
                cfg.link(t, node)
            cfg.link(node, cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = cfg.add(CFGNode(STMT, stmt=stmt))
            for t in tails:
                cfg.link(t, node)
            return []  # exceptional exit: not linked to the normal exit
        if isinstance(stmt, (ast.Break, ast.Continue)):
            node = cfg.add(CFGNode(STMT, stmt=stmt))
            for t in tails:
                cfg.link(t, node)
            if self.loop_stack:
                brk, cont = self.loop_stack[-1]
                cfg.link(node, brk if isinstance(stmt, ast.Break) else cont)
            return []
        if isinstance(stmt, ast.If):
            head = cfg.add(CFGNode(STMT, expr=stmt.test))
            for t in tails:
                cfg.link(t, head)
            then_tails = self._body(stmt.body, [head])
            else_tails = self._body(stmt.orelse, [head]) if stmt.orelse else [head]
            return then_tails + else_tails
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, tails)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            ctx = ast.Tuple(elts=[i.context_expr for i in stmt.items], ctx=ast.Load())
            head = cfg.add(CFGNode(STMT, expr=ctx))
            for t in tails:
                cfg.link(t, head)
            return self._body(stmt.body, [head])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, tails)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, tails)
        # Simple statement (expression, assignment, nested def, ...).
        node = cfg.add(CFGNode(STMT, stmt=stmt))
        for t in tails:
            cfg.link(t, node)
        return [node]

    def _loop(self, stmt: ast.stmt, tails: list[int]) -> list[int]:
        cfg = self.cfg
        head_expr = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
        head = cfg.add(CFGNode(STMT, expr=head_expr))
        for t in tails:
            cfg.link(t, head)
        exit_marker = cfg.add(CFGNode(LOOPEXIT, loop=stmt))
        self.loop_stack.append((exit_marker, head))
        body_tails = self._body(stmt.body, [head])
        self.loop_stack.pop()
        for t in body_tails:
            cfg.link(t, head)  # back edge
        cfg.link(head, exit_marker)  # zero/It-done iteration exit
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            return self._body(orelse, [exit_marker])
        return [exit_marker]

    def _try(self, stmt: ast.Try, tails: list[int]) -> list[int]:
        cfg = self.cfg
        head = cfg.add(CFGNode(STMT))
        for t in tails:
            cfg.link(t, head)
        body_tails = self._body(stmt.body, [head])
        if stmt.orelse:
            body_tails = self._body(stmt.orelse, body_tails)
        out = list(body_tails)
        for handler in stmt.handlers:
            # Pessimistic: the handler runs with the state at the try head.
            out.extend(self._body(handler.body, [head]))
        if stmt.finalbody:
            out = self._body(stmt.finalbody, out) if out else []
        return out

    def _match(self, stmt: ast.Match, tails: list[int]) -> list[int]:
        cfg = self.cfg
        head = cfg.add(CFGNode(STMT, expr=stmt.subject))
        for t in tails:
            cfg.link(t, head)
        out: list[int] = []
        exhaustive = False
        for case in stmt.cases:
            out.extend(self._body(case.body, [head]))
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if not exhaustive:
            out.append(head)  # no case matched: fall through
        return out


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the statement-level CFG for one function."""
    return _Builder(fn).build()


__all__ = [
    "CFG",
    "CFGNode",
    "ENTRY",
    "EXIT",
    "IMPLICIT_RETURN",
    "LOOPEXIT",
    "RETURN",
    "STMT",
    "build_cfg",
]
