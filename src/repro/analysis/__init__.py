"""Experiment harness (S10): Table II configurations, sweeps, figures.

* :mod:`repro.analysis.paperconfig` — Table II's parameter set as code, with
  the default (reduced) and full paper-scale sweeps.
* :mod:`repro.analysis.runner` — single-scenario and sweep runners
  returning :class:`~repro.metrics.table1.MetricsReport` grids.
* :mod:`repro.analysis.figures` — one builder per figure (6a…10) yielding
  plot-ready series plus the §VI-A shape validators.
* :mod:`repro.analysis.asciiplot` — terminal line plots for the CLI.
* :mod:`repro.analysis.compare` — paper-vs-measured claim table and the
  EXPERIMENTS.md generator.
"""

from repro.analysis.paperconfig import (
    PAPER_TASK_SWEEP,
    TEST_TASK_SWEEP,
    Scenario,
    paper_scale_scenarios,
    table2_scenarios,
)
from repro.analysis.runner import SweepResult, run_scenario, run_sweep
from repro.analysis.figures import FIGURES, FigureSeries, build_figure
from repro.analysis.compare import CLAIMS, ClaimCheck, check_claims

__all__ = [
    "CLAIMS",
    "ClaimCheck",
    "FIGURES",
    "FigureSeries",
    "PAPER_TASK_SWEEP",
    "Scenario",
    "SweepResult",
    "TEST_TASK_SWEEP",
    "build_figure",
    "check_claims",
    "paper_scale_scenarios",
    "run_scenario",
    "run_sweep",
    "table2_scenarios",
]
