"""Paper-vs-measured claim checking and EXPERIMENTS.md generation.

§VI-A makes a set of qualitative claims (who wins each metric, and how the
100- vs 200-node cases order).  :data:`CLAIMS` encodes every one;
:func:`check_claims` evaluates them against fresh sweeps and returns a
machine-checkable scorecard that the benches assert on and the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import ResultCache

from repro.analysis.figures import FIGURES, build_figure
from repro.analysis.runner import (
    SweepResult,
    prefetch_scenarios,
    run_sweep,
    sweep_scenarios,
)


@dataclass(frozen=True)
class Claim:
    """One qualitative statement from §VI-A."""

    claim_id: str
    text: str
    figure: str  # which figure it concerns
    check: Callable[[dict[int, SweepResult]], bool]


def _fig_winner(figure_id: str) -> Callable[[dict[int, SweepResult]], bool]:
    """Winner check for one figure, mapped onto whatever node counts the
    sweeps were run at: 'a' figures (paper: 100 nodes) use the smaller
    count, 'b'/200-node figures the larger, so the claims remain checkable
    at reduced test scale."""
    from repro.analysis.figures import _FIG_METRICS  # shared metric map

    spec = FIGURES[figure_id]
    metric, partial_lower, _ = _FIG_METRICS[spec["base"]]
    use_low = spec["nodes"] == 100

    def check(sweeps: dict[int, SweepResult]) -> bool:
        key = min(sweeps) if use_low else max(sweeps)
        sweep = sweeps[key]
        p = sweep.series(metric, partial=True)
        f = sweep.series(metric, partial=False)
        if partial_lower:
            return all(a < b for a, b in zip(p, f))
        return all(a > b for a, b in zip(p, f))

    return check


def _node_ordering(metric: str, hundred_higher: bool, partial: bool):
    def check(sweeps: dict[int, SweepResult]) -> bool:
        lo = sweeps[min(sweeps)].series(metric, partial=partial)
        hi = sweeps[max(sweeps)].series(metric, partial=partial)
        pairs = list(zip(lo, hi))
        if hundred_higher:
            return all(a > b for a, b in pairs)
        return all(a < b for a, b in pairs)

    return check


CLAIMS: list[Claim] = [
    Claim(
        "fig6-winner",
        "Average wasted area per task is less with partial reconfiguration",
        "fig6a/fig6b",
        lambda s: _fig_winner("fig6a")(s) and _fig_winner("fig6b")(s),
    ),
    Claim(
        "fig6-nodes",
        "Wasted area for 100 nodes is far less than for 200 nodes",
        "fig6",
        _node_ordering("avg_system_wasted_area_per_task", hundred_higher=False, partial=False),
    ),
    Claim(
        "fig7-winner",
        "With partial reconfiguration a node is reconfigured more times on average",
        "fig7a/fig7b",
        lambda s: _fig_winner("fig7a")(s) and _fig_winner("fig7b")(s),
    ),
    Claim(
        "fig7-nodes",
        "With 100 nodes the reconfiguration count is higher than with 200",
        "fig7",
        _node_ordering("avg_reconfig_count_per_node", hundred_higher=True, partial=True),
    ),
    Claim(
        "fig8-winner",
        "Average waiting time per task is much lower with partial reconfiguration",
        "fig8a/fig8b",
        lambda s: _fig_winner("fig8a")(s) and _fig_winner("fig8b")(s),
    ),
    Claim(
        "fig8-nodes",
        "With 100 nodes the average waiting time is higher than with 200",
        "fig8",
        _node_ordering("avg_waiting_time_per_task", hundred_higher=True, partial=True),
    ),
    Claim(
        "fig9a-winner",
        "Partial reconfiguration needs fewer scheduling steps per task",
        "fig9a",
        _fig_winner("fig9a"),
    ),
    Claim(
        "fig9b-winner",
        "Total scheduler workload is lower with partial reconfiguration",
        "fig9b",
        _fig_winner("fig9b"),
    ),
    Claim(
        "fig10-winner",
        "Average configuration time per task is higher with partial reconfiguration",
        "fig10",
        _fig_winner("fig10"),
    ),
]


@dataclass
class ClaimCheck:
    claim: Claim
    passed: bool


def check_claims(
    task_counts: Sequence[int],
    seed: int,
    node_counts: Sequence[int] = (100, 200),
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
) -> list[ClaimCheck]:
    """Run the sweeps and evaluate every §VI-A claim.

    With ``jobs != 1`` (or an on-disk ``cache`` attached) the *whole* grid
    (every node count × task count × mode) is prefetched through the sweep
    engine in one batch — maximum parallel width — before the per-node-count
    sweeps assemble from cache in serial order.
    """
    if jobs != 1 or cache is not None:
        grid = [
            sc for n in node_counts for sc in sweep_scenarios(n, task_counts, seed)
        ]
        prefetch_scenarios(grid, jobs=jobs, progress=progress, cache=cache)
    sweeps = {
        n: run_sweep(n, task_counts, seed, progress=progress) for n in node_counts
    }
    return [ClaimCheck(claim=c, passed=c.check(sweeps)) for c in CLAIMS]


def scorecard(checks: list[ClaimCheck]) -> str:
    """Human-readable pass/fail table of the §VI-A claims."""
    lines = ["claim          figure     status  statement", "-" * 78]
    for ch in checks:
        status = "PASS" if ch.passed else "FAIL"
        lines.append(
            f"{ch.claim.claim_id:<14} {ch.claim.figure:<10} {status:<7} {ch.claim.text}"
        )
    passed = sum(1 for c in checks if c.passed)
    lines.append("-" * 78)
    lines.append(f"{passed}/{len(checks)} claims reproduced")
    return "\n".join(lines)


__all__ = ["CLAIMS", "Claim", "ClaimCheck", "check_claims", "scorecard"]
