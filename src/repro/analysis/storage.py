"""Persistence for experiment results (JSON).

Paper-scale sweeps take hours in pure Python; this module checkpoints
completed :class:`~repro.analysis.runner.SweepResult` grids and replications
to JSON so figure building and claim checking can re-run without
re-simulating.  Reports are stored as their flat metric dicts
(:meth:`MetricsReport.as_dict`); loading reconstructs full
:class:`MetricsReport` objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.analysis.runner import SweepResult
from repro.metrics.table1 import MetricsReport

_FORMAT_VERSION = 1


def _report_to_doc(report: MetricsReport) -> dict[str, Any]:
    doc = report.as_dict()
    doc["waiting_time_stats"] = dict(report.waiting_time_stats)
    doc["running_time_stats"] = dict(report.running_time_stats)
    return doc


def _report_from_doc(doc: dict[str, Any]) -> MetricsReport:
    kwargs = dict(doc)
    kwargs["placements_by_kind"] = dict(kwargs.get("placements_by_kind", {}))
    kwargs["waiting_time_stats"] = dict(kwargs.pop("waiting_time_stats", {}))
    kwargs["running_time_stats"] = dict(kwargs.pop("running_time_stats", {}))
    return MetricsReport(**kwargs)


def save_sweep(sweep: SweepResult, path: Union[str, Path]) -> Path:
    """Write a sweep (both mode series) to a JSON file."""
    doc = {
        "format": _FORMAT_VERSION,
        "kind": "sweep",
        "nodes": sweep.nodes,
        "task_counts": sweep.task_counts,
        "partial": [_report_to_doc(r) for r in sweep.partial],
        "full": [_report_to_doc(r) for r in sweep.full],
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return path


def load_sweep(path: Union[str, Path]) -> SweepResult:
    """Reconstruct a sweep saved by :func:`save_sweep`."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("kind") != "sweep":
        raise ValueError(f"{path}: not a sweep file")
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: format {doc.get('format')} unsupported "
            f"(expected {_FORMAT_VERSION})"
        )
    sweep = SweepResult(nodes=int(doc["nodes"]), task_counts=list(doc["task_counts"]))
    sweep.partial = [_report_from_doc(d) for d in doc["partial"]]
    sweep.full = [_report_from_doc(d) for d in doc["full"]]
    if len(sweep.partial) != len(sweep.task_counts) or len(sweep.full) != len(
        sweep.task_counts
    ):
        raise ValueError(f"{path}: series lengths do not match task_counts")
    return sweep


__all__ = ["save_sweep", "load_sweep"]
