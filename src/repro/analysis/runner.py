"""Scenario and sweep runners.

Every run regenerates its resources and workload from the scenario's seed,
so partial/full comparisons see byte-identical node tables and task streams
("the same set of parameters in each simulation run", §I).  Reports are
memoised per scenario within a process so the five figure builders sharing a
sweep do not re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import ResultCache

from repro.analysis.paperconfig import Scenario
from repro.framework.simulator import DReAMSim
from repro.metrics.table1 import MetricsReport
from repro.rng import RNG
from repro.workload.generator import (
    generate_configs,
    generate_nodes,
    generate_task_stream,
)

_CACHE: dict[Scenario, MetricsReport] = {}


def run_scenario(
    scenario: Scenario, use_cache: bool = True, backend: Optional[str] = None
) -> MetricsReport:
    """Run one scenario to completion and return its Table I report.

    The memo is keyed on the scenario alone: every backend produces a
    bit-identical report (the differential suite asserts it), so a cache
    hit from a different backend's run is the same report.
    """
    if use_cache and scenario in _CACHE:
        return _CACHE[scenario]
    rng = RNG(seed=scenario.seed)
    nodes = generate_nodes(scenario.node_spec(), rng)
    configs = generate_configs(scenario.config_spec(), rng)
    stream = generate_task_stream(scenario.task_spec(), configs, rng)
    sim = DReAMSim(nodes, configs, stream, partial=scenario.partial, backend=backend)
    report = sim.run().report
    if use_cache:
        _CACHE[scenario] = report
    return report


def clear_cache() -> None:
    """Drop all memoised scenario reports (frees memory between sweeps)."""
    _CACHE.clear()


def prefetch_scenarios(
    scenarios: Iterable[Scenario],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
    cache: Optional["ResultCache"] = None,
) -> int:
    """Run every uncached scenario through the sweep engine, filling the memo.

    The workhorse behind every ``--jobs`` path: consumers list the scenarios
    a sweep/scorecard needs, this fans the uncached ones across the worker
    pool (``repro.parallel``), and the subsequent serial assembly loop turns
    into pure cache hits — so output ordering, and therefore every figure
    and table, is bit-identical to a serial run.  Returns the number of
    scenarios actually simulated.

    ``cache`` attaches an on-disk :class:`~repro.parallel.ResultCache`:
    validated entries skip execution entirely and fresh payloads persist as
    they complete, making interrupted or edited sweeps resumable
    (``--cache-dir`` in the CLI).
    """
    from repro.metrics.merge import reports_in_order
    from repro.parallel import RunSpec, SweepExecutor

    wanted: list[Scenario] = []
    seen: set[Scenario] = set()
    for sc in scenarios:
        if sc in _CACHE or sc in seen:
            continue
        seen.add(sc)
        wanted.append(sc)
    if not wanted:
        return 0
    if progress:
        progress(f"running {len(wanted)} scenario(s) with jobs={jobs}")
    specs = [RunSpec.from_scenario(sc, backend=backend) for sc in wanted]
    payloads = SweepExecutor(jobs=jobs, on_message=progress, cache=cache).run(specs)
    for sc, report in zip(wanted, reports_in_order(payloads, expected=len(specs))):
        _CACHE[sc] = report
    return len(wanted)


@dataclass
class SweepResult:
    """Reports for a task-count sweep at fixed node count, both modes."""

    nodes: int
    task_counts: list[int]
    partial: list[MetricsReport] = field(default_factory=list)
    full: list[MetricsReport] = field(default_factory=list)

    def series(self, metric: str, partial: bool) -> list[float]:
        """Extract one metric across the sweep."""
        reports = self.partial if partial else self.full
        return [float(getattr(r, metric)) for r in reports]


def sweep_scenarios(nodes: int, task_counts: Iterable[int], seed: int) -> list[Scenario]:
    """The scenario grid one sweep covers, in serial execution order."""
    return [
        Scenario(nodes=nodes, tasks=tasks, partial=partial, seed=seed)
        for tasks in task_counts
        for partial in (True, False)
    ]


def run_sweep(
    nodes: int,
    task_counts: Iterable[int],
    seed: int,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    cache: Optional["ResultCache"] = None,
) -> SweepResult:
    """Run the partial/full pair for every task count.

    ``jobs > 1`` (or ``0`` = one per CPU) executes the uncached scenarios
    through the multiprocess sweep engine first; the assembly loop below
    then consumes cache hits in serial order, so the returned
    :class:`SweepResult` is bit-identical either way.  A ``cache`` routes
    the grid through the sweep engine even at ``jobs=1`` so resumable
    on-disk results apply in every mode.
    """
    task_counts = list(task_counts)
    if jobs != 1 or cache is not None:
        prefetch_scenarios(
            sweep_scenarios(nodes, task_counts, seed),
            jobs=jobs,
            progress=progress,
            backend=backend,
            cache=cache,
        )
    result = SweepResult(nodes=nodes, task_counts=task_counts)
    for tasks in task_counts:
        for partial in (True, False):
            sc = Scenario(nodes=nodes, tasks=tasks, partial=partial, seed=seed)
            if progress:
                progress(f"running {sc.label()}")
            report = run_scenario(sc, backend=backend)
            (result.partial if partial else result.full).append(report)
    return result


__all__ = [
    "SweepResult",
    "clear_cache",
    "prefetch_scenarios",
    "run_scenario",
    "run_sweep",
    "sweep_scenarios",
]
