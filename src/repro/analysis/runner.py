"""Scenario and sweep runners.

Every run regenerates its resources and workload from the scenario's seed,
so partial/full comparisons see byte-identical node tables and task streams
("the same set of parameters in each simulation run", §I).  Reports are
memoised per scenario within a process so the five figure builders sharing a
sweep do not re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.paperconfig import Scenario
from repro.framework.simulator import DReAMSim
from repro.metrics.table1 import MetricsReport
from repro.rng import RNG
from repro.workload.generator import (
    generate_configs,
    generate_nodes,
    generate_task_stream,
)

_CACHE: dict[Scenario, MetricsReport] = {}


def run_scenario(scenario: Scenario, use_cache: bool = True) -> MetricsReport:
    """Run one scenario to completion and return its Table I report."""
    if use_cache and scenario in _CACHE:
        return _CACHE[scenario]
    rng = RNG(seed=scenario.seed)
    nodes = generate_nodes(scenario.node_spec(), rng)
    configs = generate_configs(scenario.config_spec(), rng)
    stream = generate_task_stream(scenario.task_spec(), configs, rng)
    sim = DReAMSim(nodes, configs, stream, partial=scenario.partial)
    report = sim.run().report
    if use_cache:
        _CACHE[scenario] = report
    return report


def clear_cache() -> None:
    """Drop all memoised scenario reports (frees memory between sweeps)."""
    _CACHE.clear()


@dataclass
class SweepResult:
    """Reports for a task-count sweep at fixed node count, both modes."""

    nodes: int
    task_counts: list[int]
    partial: list[MetricsReport] = field(default_factory=list)
    full: list[MetricsReport] = field(default_factory=list)

    def series(self, metric: str, partial: bool) -> list[float]:
        """Extract one metric across the sweep."""
        reports = self.partial if partial else self.full
        return [float(getattr(r, metric)) for r in reports]


def run_sweep(
    nodes: int,
    task_counts: Iterable[int],
    seed: int,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run the partial/full pair for every task count."""
    task_counts = list(task_counts)
    result = SweepResult(nodes=nodes, task_counts=task_counts)
    for tasks in task_counts:
        for partial in (True, False):
            sc = Scenario(nodes=nodes, tasks=tasks, partial=partial, seed=seed)
            if progress:
                progress(f"running {sc.label()}")
            report = run_scenario(sc)
            (result.partial if partial else result.full).append(report)
    return result


__all__ = ["SweepResult", "clear_cache", "run_scenario", "run_sweep"]
