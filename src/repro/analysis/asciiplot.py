"""Minimal ASCII line plots for terminal figure output.

No plotting dependency is available offline, so the CLI renders figures as
character grids — good enough to eyeball the partial-vs-full ordering the
paper's figures convey.
"""

from __future__ import annotations

from typing import Sequence


def _scale(values: Sequence[float], size: int, lo: float, hi: float) -> list[int]:
    span = hi - lo
    if span <= 0:
        return [0 for _ in values]
    return [min(size - 1, max(0, round((v - lo) / span * (size - 1)))) for v in values]


def ascii_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more y-series against x as an ASCII grid.

    Each series gets a marker character; overlapping points show the later
    series' marker.  Returns a multi-line string.
    """
    if not x or not series:
        return "(no data)"
    markers = "*o+x#@"
    all_y = [v for ys in series.values() for v in ys]
    lo_y, hi_y = min(all_y), max(all_y)
    lo_x, hi_x = min(x), max(x)
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(list(x), width, lo_x, hi_x)
    for (name, ys), marker in zip(series.items(), markers):
        rows = _scale(list(ys), height, lo_y, hi_y)
        prev = None
        for c, r in zip(cols, rows):
            rr = height - 1 - r
            grid[rr][c] = marker
            if prev is not None:
                # connect with a sparse vertical run for readability
                pc, pr = prev
                if pc == c:
                    continue
                for cc in range(min(pc, c) + 1, max(pc, c)):
                    t = (cc - pc) / (c - pc)
                    interp = round(pr + t * (rr - pr))
                    if grid[interp][cc] == " ":
                        grid[interp][cc] = "."
            prev = (c, rr)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{lo_y:.4g} .. {hi_y:.4g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: [{lo_x:.4g} .. {hi_x:.4g}]")
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)


def series_table(
    x: Sequence[float], series: dict[str, Sequence[float]], x_label: str = "tasks"
) -> str:
    """Aligned numeric table of the same data (for copy/paste comparison)."""
    headers = [x_label] + list(series)
    rows = [
        [f"{xi:g}"] + [f"{series[name][i]:.6g}" for name in series]
        for i, xi in enumerate(x)
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for r in rows:
        out.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(out)


__all__ = ["ascii_plot", "series_table"]
