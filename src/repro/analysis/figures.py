"""Figure builders: one per figure of the paper's evaluation (Figs. 6–10).

Each builder maps a :class:`~repro.analysis.runner.SweepResult` to a
:class:`FigureSeries` — the x-axis (total tasks generated) and the
partial/full y-series the paper plots — plus a shape validator encoding the
§VI-A claim for that figure ("who wins").  The benches call the validators;
the CLI renders the series as ASCII plots or CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.runner import SweepResult

# figure id -> (report attribute, paper claim: does partial win (smaller)?)
_FIG_METRICS: dict[str, tuple[str, bool, str]] = {
    # fig id: (metric attr, partial_is_lower, description)
    "fig6": (
        "avg_system_wasted_area_per_task",
        True,
        "Average wasted area per task (Eqs. 6-7)",
    ),
    "fig7": (
        "avg_reconfig_count_per_node",
        False,
        "Average reconfiguration count per node",
    ),
    "fig8": ("avg_waiting_time_per_task", True, "Average waiting time per task (Eq. 9)"),
    "fig9a": (
        "avg_scheduling_steps_per_task",
        True,
        "Average scheduling steps per task",
    ),
    "fig9b": ("total_scheduler_workload", True, "Total scheduler workload"),
    "fig10": (
        "avg_reconfig_time_per_task",
        False,
        "Average configuration time per task (Eq. 10)",
    ),
}

# Figures as they appear in the paper, with their node counts.
FIGURES: dict[str, dict] = {
    "fig6a": {"base": "fig6", "nodes": 100},
    "fig6b": {"base": "fig6", "nodes": 200},
    "fig7a": {"base": "fig7", "nodes": 100},
    "fig7b": {"base": "fig7", "nodes": 200},
    "fig8a": {"base": "fig8", "nodes": 100},
    "fig8b": {"base": "fig8", "nodes": 200},
    "fig9a": {"base": "fig9a", "nodes": 200},
    "fig9b": {"base": "fig9b", "nodes": 200},
    "fig10": {"base": "fig10", "nodes": 200},
}


@dataclass
class FigureSeries:
    """Plot-ready data for one figure."""

    figure_id: str
    title: str
    nodes: int
    metric: str
    x: list[int] = field(default_factory=list)  # total tasks generated
    partial: list[float] = field(default_factory=list)
    full: list[float] = field(default_factory=list)
    partial_should_be_lower: bool = True

    def validate_shape(self) -> list[str]:
        """Check the §VI-A winner claim pointwise; returns violation notes."""
        problems = []
        for x, p, f in zip(self.x, self.partial, self.full):
            if self.partial_should_be_lower and not p < f:
                problems.append(
                    f"{self.figure_id} @ {x} tasks: partial={p:.4g} !< full={f:.4g}"
                )
            if not self.partial_should_be_lower and not p > f:
                problems.append(
                    f"{self.figure_id} @ {x} tasks: partial={p:.4g} !> full={f:.4g}"
                )
        return problems

    @property
    def winner_consistent(self) -> bool:
        return not self.validate_shape()

    def mean_ratio(self) -> float:
        """Mean full/partial ratio (>1 when partial wins a 'lower is better'
        metric) — the 'by roughly what factor' readout."""
        ratios = [
            (f / p) if self.partial_should_be_lower else (p / f)
            for p, f in zip(self.partial, self.full)
            if p > 0 and f > 0
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def rows(self) -> list[tuple[int, float, float]]:
        """(tasks, partial, full) triples — the figure's plotted points."""
        return list(zip(self.x, self.partial, self.full))

    def to_csv(self) -> str:
        """Figure series as CSV (tasks, partial, full) for external plotting."""
        lines = [f"# {self.figure_id}: {self.title}", "tasks,partial,full"]
        for x, p, f in self.rows():
            lines.append(f"{x},{p!r},{f!r}")
        return "\n".join(lines) + "\n"


def build_figure(figure_id: str, sweep: SweepResult) -> FigureSeries:
    """Assemble one figure's series from a completed sweep."""
    if figure_id not in FIGURES:
        raise ValueError(f"unknown figure {figure_id!r}; options: {sorted(FIGURES)}")
    spec = FIGURES[figure_id]
    metric, partial_lower, title = _FIG_METRICS[spec["base"]]
    if sweep.nodes != spec["nodes"]:
        raise ValueError(
            f"{figure_id} uses {spec['nodes']} nodes; sweep has {sweep.nodes}"
        )
    return FigureSeries(
        figure_id=figure_id,
        title=f"{title} ({spec['nodes']} nodes)",
        nodes=spec["nodes"],
        metric=metric,
        x=list(sweep.task_counts),
        partial=sweep.series(metric, partial=True),
        full=sweep.series(metric, partial=False),
        partial_should_be_lower=partial_lower,
    )


def figures_for_nodes(nodes: int) -> list[str]:
    """Figure ids whose node count matches."""
    return [fid for fid, spec in FIGURES.items() if spec["nodes"] == nodes]


__all__ = ["FIGURES", "FigureSeries", "build_figure", "figures_for_nodes"]
