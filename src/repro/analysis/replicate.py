"""Multi-seed replication: means and confidence intervals per metric.

Single-run simulation numbers are one draw from the workload distribution;
credible experiment practice replicates over independent seeds and reports
mean ± confidence interval.  :func:`replicate` runs a scenario across seeds
and aggregates every numeric Table I metric; :func:`compare_modes` pairs
partial/full replications and reports per-metric win rates, so a figure
claim can be stated with statistical backing rather than from one seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.analysis.paperconfig import Scenario
from repro.analysis.runner import prefetch_scenarios, run_scenario
from repro.metrics.accumulators import RunningStats
from repro.metrics.table1 import MetricsReport

# Two-sided t critical values at 95% for small dof (index = dof); falls back
# to the normal 1.96 beyond the table.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
}


def t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom."""
    if dof <= 0:
        return float("inf")
    if dof in _T95:
        return _T95[dof]
    candidates = [k for k in _T95 if k <= dof]
    return _T95[max(candidates)] if candidates else 1.96


_NUMERIC_METRICS = (
    "avg_wasted_area_per_task",
    "avg_system_wasted_area_per_task",
    "avg_running_time_per_task",
    "avg_reconfig_count_per_node",
    "avg_reconfig_time_per_task",
    "avg_waiting_time_per_task",
    "avg_scheduling_steps_per_task",
    "total_discarded_tasks",
    "total_scheduler_workload",
    "total_used_nodes",
    "total_simulation_time",
    "total_completed_tasks",
)


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± 95% CI for one metric over n replications."""

    metric: str
    n: int
    mean: float
    stddev: float
    ci95_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_half_width

    def overlaps(self, other: "MetricSummary") -> bool:
        """True when the two 95% confidence intervals intersect."""
        return not (self.ci_high < other.ci_low or other.ci_high < self.ci_low)


@dataclass
class Replication:
    """Aggregated replication of one scenario."""

    scenario: Scenario
    seeds: list[int]
    reports: list[MetricsReport] = field(default_factory=list)
    summaries: dict[str, MetricSummary] = field(default_factory=dict)

    def summary(self, metric: str) -> MetricSummary:
        """The aggregated mean ± CI for one metric."""
        if metric not in self.summaries:
            raise KeyError(f"metric {metric!r} not aggregated")
        return self.summaries[metric]


def replicate(
    scenario: Scenario,
    seeds: Sequence[int],
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> Replication:
    """Run ``scenario`` once per seed and aggregate every numeric metric.

    ``jobs != 1`` prefetches the per-seed runs through the parallel sweep
    engine; the aggregation below then reads cache hits in seed order, so
    the replication is bit-identical to a serial one.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    if jobs != 1:
        prefetch_scenarios(
            [replace(scenario, seed=s) for s in seeds], jobs=jobs, progress=progress
        )
    rep = Replication(scenario=scenario, seeds=list(seeds))
    for seed in seeds:
        sc = replace(scenario, seed=seed)
        if progress:
            progress(f"replicating {sc.label()} seed={seed}")
        rep.reports.append(run_scenario(sc))
    for metric in _NUMERIC_METRICS:
        stats = RunningStats()
        for r in rep.reports:
            stats.add(float(getattr(r, metric)))
        half = (
            t_critical_95(stats.n - 1) * stats.stddev / math.sqrt(stats.n)
            if stats.n > 1
            else 0.0
        )
        rep.summaries[metric] = MetricSummary(
            metric=metric,
            n=stats.n,
            mean=stats.mean,
            stddev=stats.stddev,
            ci95_half_width=half,
        )
    return rep


@dataclass(frozen=True)
class ModeComparison:
    """Replicated partial-vs-full comparison for one metric."""

    metric: str
    partial: MetricSummary
    full: MetricSummary
    partial_win_rate: float  # fraction of seeds where partial < full
    separated: bool  # confidence intervals do not overlap

    def partial_wins(self, lower_is_better: bool = True) -> bool:
        """Did the partial scenario win on the replicated means?"""
        if lower_is_better:
            return self.partial.mean < self.full.mean
        return self.partial.mean > self.full.mean


def compare_modes(
    nodes: int,
    tasks: int,
    seeds: Sequence[int],
    metrics: Sequence[str] = _NUMERIC_METRICS,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> dict[str, ModeComparison]:
    """Replicate both scenarios over paired seeds; summarise per metric."""
    base = Scenario(nodes=nodes, tasks=tasks, partial=True)
    if jobs != 1:
        grid = [
            replace(base, partial=pt, seed=s) for pt in (True, False) for s in seeds
        ]
        prefetch_scenarios(grid, jobs=jobs, progress=progress)
    rep_p = replicate(base, seeds, progress=progress)
    rep_f = replicate(replace(base, partial=False), seeds, progress=progress)
    out: dict[str, ModeComparison] = {}
    for metric in metrics:
        wins = sum(
            1
            for rp, rf in zip(rep_p.reports, rep_f.reports)
            if getattr(rp, metric) < getattr(rf, metric)
        )
        s_p, s_f = rep_p.summary(metric), rep_f.summary(metric)
        out[metric] = ModeComparison(
            metric=metric,
            partial=s_p,
            full=s_f,
            partial_win_rate=wins / len(seeds),
            separated=not s_p.overlaps(s_f),
        )
    return out


__all__ = [
    "MetricSummary",
    "ModeComparison",
    "Replication",
    "compare_modes",
    "replicate",
    "t_critical_95",
]
