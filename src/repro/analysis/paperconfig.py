"""Table II as code: the paper's simulation parameter values.

====================================  =======================
Total nodes                           100, 200
Total configurations                  50
Total tasks generated                 1 000 … 100 000
Next task generation interval         [1 … 50] (uniform)
Configuration ReqArea range           [200 … 2000]
Node TotalArea range                  [1000 … 4000]
Task t_required range                 [100 … 100 000]
t_config range                        [10 … 20]
CClosestMatch percentage              15 %
Reconfiguration method                with / without partial
====================================  =======================

The default sweep is scale-reduced (≤ 20 000 tasks) because the reference's
metrics are simulation-internal counts whose qualitative ordering is already
established well below full scale (DESIGN.md §6); ``paper_scale_scenarios``
returns the full Table II grid for long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.workload.spec import ConfigSpec, NodeSpec, TaskSpec

DEFAULT_SEED = 20120521

# The x-axes of Figures 6-10.
PAPER_TASK_SWEEP = (1_000, 10_000, 20_000, 40_000, 60_000, 80_000, 100_000)
DEFAULT_TASK_SWEEP = (1_000, 2_000, 5_000, 10_000, 15_000, 20_000)
TEST_TASK_SWEEP = (200, 500, 1_000)  # for CI-speed shape checks

PAPER_NODE_COUNTS = (100, 200)


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulation run."""

    nodes: int
    tasks: int
    partial: bool
    configs: int = 50
    seed: int = DEFAULT_SEED

    def label(self) -> str:
        """Stable identifier, e.g. ``n200-t1000-partial``."""
        mode = "partial" if self.partial else "full"
        return f"n{self.nodes}-t{self.tasks}-{mode}"

    def node_spec(self) -> NodeSpec:
        """Table II node spec at this scenario's node count."""
        return NodeSpec(count=self.nodes)

    def config_spec(self) -> ConfigSpec:
        """Table II configuration spec at this scenario's config count."""
        return ConfigSpec(count=self.configs)

    def task_spec(self) -> TaskSpec:
        """Table II task spec at this scenario's task count."""
        return TaskSpec(count=self.tasks)


def table2_scenarios(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    task_sweep: Sequence[int] = DEFAULT_TASK_SWEEP,
    seed: int = DEFAULT_SEED,
) -> list[Scenario]:
    """The full scenario grid: node counts × task sweep × {partial, full}."""
    grid = []
    for nodes in node_counts:
        for tasks in task_sweep:
            for partial in (True, False):
                grid.append(
                    Scenario(nodes=nodes, tasks=tasks, partial=partial, seed=seed)
                )
    return grid


def paper_scale_scenarios(seed: int = DEFAULT_SEED) -> list[Scenario]:
    """The unreduced Table II grid (hours of CPU in pure Python)."""
    return table2_scenarios(task_sweep=PAPER_TASK_SWEEP, seed=seed)


def scenario_pair(nodes: int, tasks: int, seed: int = DEFAULT_SEED) -> tuple[Scenario, Scenario]:
    """(partial, full) scenarios over the identical workload."""
    s = Scenario(nodes=nodes, tasks=tasks, partial=True, seed=seed)
    return s, replace(s, partial=False)


__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_TASK_SWEEP",
    "PAPER_NODE_COUNTS",
    "PAPER_TASK_SWEEP",
    "TEST_TASK_SWEEP",
    "Scenario",
    "paper_scale_scenarios",
    "scenario_pair",
    "table2_scenarios",
]
