"""Analytic queueing predictions for cross-validating the simulator.

Treating the cluster as a G/G/c station (arrivals: the task stream; servers:
concurrently hostable tasks), classical approximations predict utilisation
and queueing delay *without simulating*.  The test suite uses these as an
independent check on the whole pipeline — a wrong event loop or a leaked
region shows up as a theory/simulation mismatch — and users can size systems
("how many nodes before waits explode?") analytically before sweeping.

Implemented:

* :func:`erlang_c` — M/M/c probability of waiting (exact).
* :func:`gg_c_wait` — the Allen–Cunneen G/G/c mean-queueing-delay
  approximation, ``Wq ≈ C(c, a)/(c·μ − λ) · (Ca² + Cs²)/2``.
* :func:`effective_servers` — how many tasks a node set can host at once
  given the configuration area distribution (the ``c`` of the station),
  for either reconfiguration mode.
* :func:`predict` — end-to-end prediction from Table II-style specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.model.config import Configuration
from repro.model.node import Node


def erlang_c(servers: int, offered_load: float) -> float:
    """M/M/c probability an arrival must wait (Erlang-C formula).

    ``offered_load`` is a = λ/μ in erlangs; requires ``a < servers`` for a
    stable queue (returns 1.0 at or beyond saturation).
    """
    if servers <= 0:
        raise ValueError("servers must be positive")
    if offered_load < 0:
        raise ValueError("offered_load must be non-negative")
    a = offered_load
    if a >= servers:
        return 1.0
    # Iterative Erlang-B to avoid huge factorials, then convert to Erlang-C.
    b = 1.0
    for k in range(1, servers + 1):
        b = a * b / (k + a * b)
    rho = a / servers
    return b / (1.0 - rho + rho * b)


def gg_c_wait(
    arrival_rate: float,
    service_mean: float,
    servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Allen–Cunneen approximation of the mean wait in queue (G/G/c).

    ``ca2``/``cs2`` are the squared coefficients of variation of the
    interarrival and service distributions (1.0 = Poisson/exponential).
    Returns ``inf`` for an unstable queue.
    """
    if arrival_rate <= 0 or service_mean <= 0:
        raise ValueError("rates and means must be positive")
    a = arrival_rate * service_mean
    if a >= servers:
        return math.inf
    pw = erlang_c(servers, a)
    mm_c_wait = pw * service_mean / (servers - a)
    return mm_c_wait * (ca2 + cs2) / 2.0


def effective_servers(
    nodes: Sequence[Node], configs: Sequence[Configuration], partial: bool
) -> int:
    """How many tasks the node set can execute concurrently.

    Full reconfiguration: one task per node.  Partial: each node hosts as
    many mean-sized regions as its area fits (at least one if any
    configuration fits at all).
    """
    if not configs:
        raise ValueError("configs must be non-empty")
    if not partial:
        return len(nodes)
    mean_area = sum(c.req_area for c in configs) / len(configs)
    total = 0
    for node in nodes:
        if node.total_area >= min(c.req_area for c in configs):
            total += max(1, int(node.total_area // mean_area))
    return total


@dataclass(frozen=True)
class QueueingPrediction:
    """Analytic station-level prediction for one scenario."""

    servers: int
    offered_load: float  # erlangs
    utilization: float  # rho = a / c
    wait_probability: float  # Erlang-C P(wait)
    mean_wait: float  # Allen-Cunneen Wq (ticks); inf if unstable
    stable: bool


def predict(
    nodes: Sequence[Node],
    configs: Sequence[Configuration],
    mean_interarrival: float,
    mean_service: float,
    partial: bool,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> QueueingPrediction:
    """End-to-end analytic prediction from system specs.

    For Table II's uniform distributions, ``ca2`` of a U[1,50] interarrival
    is ≈ 0.27 and ``cs2`` of U[100,100000] service is ≈ 0.33 — pass them for
    tighter predictions; the defaults assume exponential shapes.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    lam = 1.0 / mean_interarrival
    c = effective_servers(nodes, configs, partial)
    a = lam * mean_service
    rho = a / c if c else math.inf
    stable = a < c
    return QueueingPrediction(
        servers=c,
        offered_load=a,
        utilization=rho,
        wait_probability=erlang_c(c, a) if c else 1.0,
        mean_wait=gg_c_wait(lam, mean_service, c, ca2, cs2) if c else math.inf,
        stable=stable,
    )


def uniform_scv(low: float, high: float) -> float:
    """Squared coefficient of variation of a U[low, high] variate."""
    if high < low:
        raise ValueError("requires low <= high")
    mean = (low + high) / 2.0
    if mean == 0:
        raise ValueError("mean must be non-zero")
    var = (high - low) ** 2 / 12.0
    return var / (mean * mean)


__all__ = [
    "QueueingPrediction",
    "effective_servers",
    "erlang_c",
    "gg_c_wait",
    "predict",
    "uniform_scv",
]
