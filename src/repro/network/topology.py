"""RMS-rooted network topologies over the node set.

The RMS (Fig. 1) is the root; every reconfigurable node hangs off it
through one or more links.  The default is a star (one link per node, of a
chosen class); arbitrary multi-hop layouts build on networkx with
shortest-path (by latency) routing.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import networkx as nx

from repro.model.node import Node
from repro.network.links import Link, LinkClass, transfer_time

RMS = "RMS"  # the root vertex name


class Topology:
    """A latency-weighted interconnect graph rooted at the RMS."""

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._g.add_node(RMS)
        self._path_cache: dict[int, list[Link]] = {}

    # -- construction ----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node vertex (without connecting it yet)."""
        self._g.add_node(node.node_no)

    def connect(self, a: Union[int, str], b: Union[int, str], link: Link) -> None:
        """Join two vertices (node numbers or ``RMS``) with a link."""
        for v in (a, b):
            if v != RMS and v not in self._g:
                self._g.add_node(v)
        self._g.add_edge(a, b, link=link, weight=link.latency)
        self._path_cache.clear()

    @classmethod
    def star(
        cls,
        nodes: Sequence[Node],
        link_class: LinkClass = LinkClass.WIRED,
        link: Optional[Link] = None,
    ) -> "Topology":
        """One direct RMS↔node link per node (the default layout)."""
        topo = cls()
        the_link = link if link is not None else Link.preset(link_class)
        for node in nodes:
            topo.connect(RMS, node.node_no, the_link)
        return topo

    @classmethod
    def clustered(
        cls,
        nodes: Sequence[Node],
        cluster_size: int,
        backbone: Optional[Link] = None,
        leaf: Optional[Link] = None,
    ) -> "Topology":
        """Clusters of nodes behind WAN backbone switches (Fig. 1's mix):
        RMS —WAN— switch_k —wired— node."""
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        topo = cls()
        bb = backbone if backbone is not None else Link.preset(LinkClass.WAN)
        lf = leaf if leaf is not None else Link.preset(LinkClass.WIRED)
        for i, node in enumerate(nodes):
            switch = f"switch{i // cluster_size}"
            if switch not in topo._g:
                topo.connect(RMS, switch, bb)
            topo.connect(switch, node.node_no, lf)
        return topo

    # -- queries --------------------------------------------------------------------

    def path_to(self, node_no: int) -> list[Link]:
        """Links along the minimum-latency RMS→node route."""
        if node_no in self._path_cache:
            return self._path_cache[node_no]
        if node_no not in self._g:
            raise KeyError(f"node {node_no} not in topology")
        try:
            vertices = nx.shortest_path(self._g, RMS, node_no, weight="weight")
        except nx.NetworkXNoPath:
            raise KeyError(f"node {node_no} unreachable from RMS") from None
        links = [
            self._g.edges[u, v]["link"] for u, v in zip(vertices, vertices[1:])
        ]
        self._path_cache[node_no] = links
        return links

    def comm_time(self, node_no: int, nbytes: int) -> int:
        """RMS→node transfer time for a payload."""
        return transfer_time(self.path_to(node_no), nbytes)

    def hop_count(self, node_no: int) -> int:
        """Number of links on the RMS→node route."""
        return len(self.path_to(node_no))

    def reachable(self, node_no: int) -> bool:
        """Is there any RMS→node route?"""
        try:
            self.path_to(node_no)
            return True
        except KeyError:
            return False


__all__ = ["Topology", "RMS"]
