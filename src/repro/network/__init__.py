"""Network substrate (S12) — the interconnect of Fig. 1.

The paper's system diagram places the Resource Management System behind a
mix of wired, wireless and WAN links; tasks reach nodes over the network
(Eq. 8's ``t_comm``) and *bitstreams* are shipped to nodes for
reconfiguration ("an existing Cᵢ on a node can be changed by sending a
bitstream").  Table II abstracts these into fixed ranges, so the default
simulations do too — but the framework exposes the substrate for realistic
studies:

* :mod:`repro.network.links` — link models (latency + bandwidth, classed as
  wired/wireless/WAN presets) and transfer-time computation.
* :mod:`repro.network.topology` — an RMS-rooted topology over the node set
  (star by default; arbitrary graphs via networkx), path resolution and
  per-node effective delay/bandwidth.
* :mod:`repro.network.delays` — a :class:`NetworkModel` that the framework
  consults for ``t_comm`` (task data over the path) and bitstream-loading
  time (``BSize`` over the path plus the device's configuration port rate),
  replacing Table II's fixed ranges when attached.
"""

from repro.network.delays import FixedDelayModel, NetworkModel, TransferDelayModel
from repro.network.links import Link, LinkClass, transfer_time
from repro.network.topology import Topology

__all__ = [
    "FixedDelayModel",
    "Link",
    "LinkClass",
    "NetworkModel",
    "Topology",
    "TransferDelayModel",
    "transfer_time",
]
