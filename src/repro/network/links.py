"""Link models: latency + bandwidth with wired/wireless/WAN presets.

Units follow the simulation's conventions: latency in timeticks, bandwidth
in bytes per timetick.  Transfer time of a payload is
``latency + ceil(bytes / bandwidth)`` (store-and-forward per link).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class LinkClass(enum.Enum):
    """The three interconnect classes of Fig. 1."""

    WIRED = "wired"
    WIRELESS = "wireless"
    WAN = "wan"


# Presets: (latency ticks, bytes/tick).  Chosen so a median Table II
# bitstream (~140 KB at 128 B/area-unit) loads in ~10-20 ticks over a wired
# link — consistent with the paper's t_config range.
_PRESETS: dict[LinkClass, tuple[int, int]] = {
    LinkClass.WIRED: (1, 16_384),
    LinkClass.WIRELESS: (3, 4_096),
    LinkClass.WAN: (10, 8_192),
}


@dataclass(frozen=True)
class Link:
    """A point-to-point link."""

    latency: int  # ticks
    bandwidth: int  # bytes / tick
    link_class: LinkClass = LinkClass.WIRED

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    @classmethod
    def preset(cls, link_class: LinkClass) -> "Link":
        latency, bandwidth = _PRESETS[link_class]
        return cls(latency=latency, bandwidth=bandwidth, link_class=link_class)

    def transfer_time(self, nbytes: int) -> int:
        """Ticks to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return self.latency
        return self.latency + math.ceil(nbytes / self.bandwidth)


def transfer_time(path: list[Link], nbytes: int) -> int:
    """Store-and-forward transfer time across a path of links."""
    return sum(link.transfer_time(nbytes) for link in path)


__all__ = ["Link", "LinkClass", "transfer_time"]
