"""Network delay models consumed by the framework.

A :class:`NetworkModel` answers two questions per placement:

* ``comm_time(node, task)`` — Eq. 8's ``t_comm``: shipping the task (its
  input ``data``) from the RMS to the node.
* ``config_transfer_time(node, config)`` — the bitstream-shipping component
  of reconfiguration.  The device-side programming time is the
  configuration's own ``config_time``; when a network model is attached the
  effective reconfiguration delay is ``transfer + program``.

Two implementations:

* :class:`FixedDelayModel` — Table II's abstraction (node-constant comm
  delay, zero transfer); the default behaviour when no model is attached.
* :class:`TransferDelayModel` — computes both from a
  :class:`~repro.network.topology.Topology` and payload sizes, optionally
  with a per-node bitstream cache (a real partial-reconfiguration system
  keeps recent bitstreams in on-board flash, skipping the transfer on
  re-load).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.model.config import Configuration
from repro.model.node import Node
from repro.model.task import Task
from repro.network.topology import Topology


class NetworkModel(abc.ABC):
    """Delay oracle for task shipping and bitstream transfer."""

    @abc.abstractmethod
    def comm_time(self, node: Node, task: Task) -> int:
        """Eq. 8 t_comm for sending ``task`` to ``node``."""

    @abc.abstractmethod
    def config_transfer_time(self, node: Node, config: Configuration) -> int:
        """Bitstream-shipping ticks before programming can start."""


class FixedDelayModel(NetworkModel):
    """Table II behaviour: per-node constant comm delay, free bitstreams."""

    def comm_time(self, node: Node, task: Task) -> int:
        return node.network_delay

    def config_transfer_time(self, node: Node, config: Configuration) -> int:
        return 0


class TransferDelayModel(NetworkModel):
    """Topology-derived delays with an optional per-node bitstream cache.

    Parameters
    ----------
    topology:
        RMS-rooted interconnect; unreachable nodes raise at query time.
    cache_size:
        Bitstreams kept per node (LRU).  ``0`` disables caching.  A cache
        hit skips the transfer entirely — only the device programming time
        (the configuration's ``config_time``) remains.
    """

    def __init__(self, topology: Topology, cache_size: int = 0) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self.topology = topology
        self.cache_size = cache_size
        self._caches: dict[int, list[int]] = {}  # node_no -> LRU of config_nos
        self.cache_hits = 0
        self.cache_misses = 0

    def comm_time(self, node: Node, task: Task) -> int:
        payload = int(task.data) if isinstance(task.data, (int, float)) else 0
        return self.topology.comm_time(node.node_no, payload)

    def config_transfer_time(self, node: Node, config: Configuration) -> int:
        if self.cache_size > 0:
            cache = self._caches.setdefault(node.node_no, [])
            if config.config_no in cache:
                cache.remove(config.config_no)
                cache.append(config.config_no)  # refresh LRU position
                self.cache_hits += 1
                return 0
            self.cache_misses += 1
            cache.append(config.config_no)
            if len(cache) > self.cache_size:
                cache.pop(0)
        return self.topology.comm_time(node.node_no, config.bsize)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


__all__ = ["NetworkModel", "FixedDelayModel", "TransferDelayModel"]
