"""Task-graph scheduling (S9) — the paper's declared future work.

§VII: "We will implement scheduling policies to schedule task graphs on the
distributed system with reconfigurable nodes."  This package delivers that
extension:

* :mod:`repro.taskgraph.dag` — a task-graph model (DAG of
  :class:`GraphTask` nodes with communication-weighted edges), validation,
  and generators for the standard benchmark shapes (layered random graphs,
  pipelines, fork–join, map–reduce).
* :mod:`repro.taskgraph.listsched` — list scheduling on reconfigurable
  nodes: HEFT-style upward-rank prioritisation feeding the paper's
  four-phase scheduler as tasks become ready, with a FIFO baseline for
  comparison.
"""

from repro.taskgraph.dag import (
    GraphTask,
    TaskGraph,
    fork_join,
    layered_random,
    map_reduce,
    pipeline,
)
from repro.taskgraph.listsched import (
    GraphScheduleResult,
    TaskGraphScheduler,
    upward_ranks,
)

__all__ = [
    "GraphScheduleResult",
    "GraphTask",
    "TaskGraph",
    "TaskGraphScheduler",
    "fork_join",
    "layered_random",
    "map_reduce",
    "pipeline",
    "upward_ranks",
]
