"""Task graphs: DAGs of dependent tasks with communication costs.

A :class:`TaskGraph` node is a :class:`GraphTask` (execution time + preferred
configuration, like Eq. 3 tasks); an edge ``(u, v, comm)`` means ``v`` may
start only after ``u`` completes and its output (costing ``comm`` timeticks
of transfer when the two run on different nodes) has arrived.

Generators produce the standard evaluation shapes: layered random DAGs
(the classic scheduling-literature workload), linear pipelines, fork–join
and map–reduce graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import networkx as nx

from repro.model.config import Configuration
from repro.rng import RNG


@dataclass(frozen=True, eq=False)
class GraphTask:
    """One vertex of a task graph (Eq. 3 attributes, graph-scoped id)."""

    gid: int
    required_time: int
    pref_config: Configuration
    label: str = ""

    def __post_init__(self) -> None:
        if self.required_time <= 0:
            raise ValueError("required_time must be positive")

    def __repr__(self) -> str:
        return f"GraphTask(#{self.gid}, t={self.required_time}, C{self.pref_config.config_no})"


class TaskGraph:
    """A validated DAG of :class:`GraphTask` vertices."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._next_gid = 0

    # -- construction ---------------------------------------------------------

    def add_task(
        self, required_time: int, pref_config: Configuration, label: str = ""
    ) -> GraphTask:
        """Create a vertex with Eq. 3-style attributes; returns it."""
        task = GraphTask(
            gid=self._next_gid,
            required_time=required_time,
            pref_config=pref_config,
            label=label,
        )
        self._next_gid += 1
        self._g.add_node(task)
        return task

    def add_dependency(self, src: GraphTask, dst: GraphTask, comm: int = 0) -> None:
        """Declare that ``dst`` depends on ``src`` with transfer cost ``comm``."""
        if src not in self._g or dst not in self._g:
            raise ValueError("both endpoints must be tasks of this graph")
        if comm < 0:
            raise ValueError("comm must be non-negative")
        self._g.add_edge(src, dst, comm=comm)
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(src, dst)
            raise ValueError(f"edge {src.gid}->{dst.gid} would create a cycle")

    # -- queries -------------------------------------------------------------------

    @property
    def tasks(self) -> list[GraphTask]:
        return list(self._g.nodes)

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def edge_count(self) -> int:
        """Number of dependencies in the graph."""
        return self._g.number_of_edges()

    def predecessors(self, task: GraphTask) -> list[GraphTask]:
        """Direct dependencies of ``task``."""
        return list(self._g.predecessors(task))

    def successors(self, task: GraphTask) -> list[GraphTask]:
        """Tasks directly depending on ``task``."""
        return list(self._g.successors(task))

    def comm(self, src: GraphTask, dst: GraphTask) -> int:
        """Transfer cost annotated on the (src, dst) edge."""
        return self._g.edges[src, dst]["comm"]

    def entry_tasks(self) -> list[GraphTask]:
        """Tasks with no dependencies (ready at time zero)."""
        return [t for t in self._g.nodes if self._g.in_degree(t) == 0]

    def exit_tasks(self) -> list[GraphTask]:
        """Tasks nothing depends on (the graph's outputs)."""
        return [t for t in self._g.nodes if self._g.out_degree(t) == 0]

    def topological_order(self) -> list[GraphTask]:
        """Any dependency-respecting linear order of the tasks."""
        return list(nx.topological_sort(self._g))

    def critical_path_length(self) -> int:
        """Longest execution+communication chain — the makespan lower bound
        (ignoring configuration delays and resource contention)."""
        longest: dict[GraphTask, int] = {}
        for t in reversed(self.topological_order()):
            succ = [
                self.comm(t, s) + longest[s] for s in self.successors(t)
            ]
            longest[t] = t.required_time + (max(succ) if succ else 0)
        return max(longest.values(), default=0)

    def validate(self) -> None:
        """Assert acyclicity (defence-in-depth; edges are checked on add)."""
        if not nx.is_directed_acyclic_graph(self._g):  # pragma: no cover - guarded
            raise ValueError("task graph contains a cycle")


# -- generators ---------------------------------------------------------------------


def _pick(configs: Sequence[Configuration], rng: RNG) -> Configuration:
    return rng.choice(list(configs))


def pipeline(
    stages: int,
    configs: Sequence[Configuration],
    rng: RNG,
    time_range: tuple[int, int] = (100, 1000),
    comm: int = 10,
) -> TaskGraph:
    """A linear chain of ``stages`` tasks (streaming pipeline)."""
    if stages < 1:
        raise ValueError("stages must be >= 1")
    g = TaskGraph()
    prev: Optional[GraphTask] = None
    for i in range(stages):
        t = g.add_task(rng.randint(*time_range), _pick(configs, rng), label=f"stage{i}")
        if prev is not None:
            g.add_dependency(prev, t, comm=comm)
        prev = t
    return g


def fork_join(
    width: int,
    configs: Sequence[Configuration],
    rng: RNG,
    time_range: tuple[int, int] = (100, 1000),
    comm: int = 10,
) -> TaskGraph:
    """source → ``width`` parallel tasks → sink."""
    if width < 1:
        raise ValueError("width must be >= 1")
    g = TaskGraph()
    src = g.add_task(rng.randint(*time_range), _pick(configs, rng), label="fork")
    sink = g.add_task(rng.randint(*time_range), _pick(configs, rng), label="join")
    for i in range(width):
        mid = g.add_task(rng.randint(*time_range), _pick(configs, rng), label=f"w{i}")
        g.add_dependency(src, mid, comm=comm)
        g.add_dependency(mid, sink, comm=comm)
    return g


def map_reduce(
    mappers: int,
    reducers: int,
    configs: Sequence[Configuration],
    rng: RNG,
    time_range: tuple[int, int] = (100, 1000),
    comm: int = 10,
) -> TaskGraph:
    """``mappers`` sources all feeding each of ``reducers`` sinks (shuffle)."""
    if mappers < 1 or reducers < 1:
        raise ValueError("mappers and reducers must be >= 1")
    g = TaskGraph()
    maps = [
        g.add_task(rng.randint(*time_range), _pick(configs, rng), label=f"map{i}")
        for i in range(mappers)
    ]
    reds = [
        g.add_task(rng.randint(*time_range), _pick(configs, rng), label=f"red{i}")
        for i in range(reducers)
    ]
    for m in maps:
        for r in reds:
            g.add_dependency(m, r, comm=comm)
    return g


def layered_random(
    layers: int,
    width: int,
    configs: Sequence[Configuration],
    rng: RNG,
    edge_prob: float = 0.4,
    time_range: tuple[int, int] = (100, 1000),
    comm_range: tuple[int, int] = (0, 50),
) -> TaskGraph:
    """Classic layered random DAG: edges only between consecutive layers,
    every non-entry task gets at least one predecessor."""
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be >= 1")
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must lie in [0, 1]")
    g = TaskGraph()
    grid: list[list[GraphTask]] = []
    for layer in range(layers):
        row = [
            g.add_task(
                rng.randint(*time_range), _pick(configs, rng), label=f"L{layer}.{i}"
            )
            for i in range(width)
        ]
        grid.append(row)
    for layer in range(1, layers):
        for t in grid[layer]:
            linked = False
            for up in grid[layer - 1]:
                if rng.random() < edge_prob:
                    g.add_dependency(up, t, comm=rng.randint(*comm_range))
                    linked = True
            if not linked:  # guarantee connectivity
                up = rng.choice(grid[layer - 1])
                g.add_dependency(up, t, comm=rng.randint(*comm_range))
    return g


__all__ = [
    "GraphTask",
    "TaskGraph",
    "pipeline",
    "fork_join",
    "map_reduce",
    "layered_random",
]
