"""List scheduling of task graphs on partially reconfigurable nodes.

Combines the HEFT-style *upward rank* priority with the paper's four-phase
placement algorithm: whenever a graph task's dependencies are satisfied it
enters the ready pool; ready tasks are dispatched highest-rank-first through
a :class:`~repro.core.scheduler.DreamScheduler`, so placement decisions (and
their configuration costs) follow the published algorithm while inter-task
precedence is honoured by the graph driver.

``priority="fifo"`` replaces the rank order with ready-time order — the
baseline the task-graph ablation bench compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence

from repro.core.base import ScheduleResult
from repro.core.policies import PlacementPolicy
from repro.core.scheduler import DreamScheduler
from repro.model.config import Configuration
from repro.model.node import Node
from repro.model.task import Task
from repro.resources.manager import ResourceInformationManager
from repro.sim.environment import Environment
from repro.taskgraph.dag import GraphTask, TaskGraph


def upward_ranks(graph: TaskGraph) -> dict[GraphTask, float]:
    """HEFT upward rank: rank(t) = w(t) + max over successors of
    (comm(t,s) + rank(s)); entry tasks have the highest ranks along the
    critical path."""
    ranks: dict[GraphTask, float] = {}
    for t in reversed(graph.topological_order()):
        succ = graph.successors(t)
        tail = max((graph.comm(t, s) + ranks[s] for s in succ), default=0.0)
        ranks[t] = t.required_time + tail
    return ranks


@dataclass
class GraphTaskRecord:
    """Execution record for one graph vertex."""

    gtask: GraphTask
    task: Task
    node: Optional[Node] = None
    ready_at: int = 0
    started_at: int = -1
    finished_at: int = -1


@dataclass
class GraphScheduleResult:
    """Outcome of scheduling one task graph."""

    makespan: int
    records: dict[int, GraphTaskRecord] = field(default_factory=dict)  # gid ->
    critical_path: int = 0
    discarded: int = 0

    @property
    def efficiency(self) -> float:
        """Critical-path bound over achieved makespan (1.0 = optimal chain)."""
        return self.critical_path / self.makespan if self.makespan else 0.0


class TaskGraphScheduler:
    """Event-driven driver scheduling one task graph to completion.

    Parameters
    ----------
    nodes, configs:
        The resource set (fresh state; the driver owns its manager).
    partial:
        Paper scenario switch, as in :class:`DreamScheduler`.
    priority:
        ``"rank"`` (HEFT upward rank, default) or ``"fifo"`` (ready order).
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        configs: Sequence[Configuration],
        partial: bool = True,
        priority: Literal["rank", "fifo"] = "rank",
        policy: Optional[PlacementPolicy] = None,
    ) -> None:
        if priority not in ("rank", "fifo"):
            raise ValueError(f"unknown priority {priority!r}")
        self.env = Environment()
        self.rim = ResourceInformationManager(list(nodes), list(configs))
        self.scheduler = DreamScheduler(self.rim, partial=partial, policy=policy)
        self.priority = priority

    def run(self, graph: TaskGraph) -> GraphScheduleResult:
        """Execute the whole graph; returns makespan and per-task records."""
        graph.validate()
        ranks = upward_ranks(graph) if self.priority == "rank" else {}
        remaining_deps = {t: len(graph.predecessors(t)) for t in graph.tasks}
        data_ready: dict[GraphTask, int] = {t: 0 for t in graph.tasks}
        records: dict[int, GraphTaskRecord] = {}
        ready: list[GraphTask] = []
        running: dict[int, GraphTask] = {}  # task_no -> graph task
        discarded = [0]

        def order_key(gt: GraphTask):
            if self.priority == "rank":
                return (-ranks[gt], records[gt.gid].ready_at, gt.gid)
            return (records[gt.gid].ready_at, gt.gid)

        def make_ready(gt: GraphTask, at: int) -> None:
            rec = records.setdefault(
                gt.gid, GraphTaskRecord(gtask=gt, task=self._as_task(gt), ready_at=at)
            )
            rec.ready_at = max(rec.ready_at, at)
            ready.append(gt)

        def try_dispatch() -> None:
            now = int(self.env.now)
            ready.sort(key=order_key)
            i = 0
            while i < len(ready):
                gt = ready[i]
                rec = records[gt.gid]
                if rec.ready_at > now:
                    i += 1  # data still in flight; not dispatchable yet
                    continue
                task = rec.task
                if task.create_time < 0:
                    task.mark_created(now)
                outcome = self.scheduler.schedule(task, now)
                if outcome.result is ScheduleResult.SCHEDULED:
                    ready.pop(i)
                    placement = outcome.placement
                    rec.node = placement.node
                    rec.started_at = now
                    running[task.task_no] = gt
                    finish = now + placement.start_delay + task.required_time
                    self.env.call_at(finish, lambda g=gt: on_complete(g))
                elif outcome.result is ScheduleResult.DISCARDED:
                    ready.pop(i)
                    discarded[0] += 1
                    # A discarded vertex releases its successors (degraded
                    # semantics: downstream work proceeds without the input).
                    release_successors(gt, now)
                else:
                    # Suspended: the scheduler queued it; it leaves the ready
                    # pool and returns via the redispatch path.
                    ready.pop(i)

        def release_successors(gt: GraphTask, now: int) -> None:
            for succ in graph.successors(gt):
                arrival = now + graph.comm(gt, succ)
                data_ready[succ] = max(data_ready[succ], arrival)
                remaining_deps[succ] -= 1
                if remaining_deps[succ] == 0:
                    at = data_ready[succ]
                    make_ready(succ, at)
                    self.env.call_at(max(at, int(self.env.now)), try_dispatch)

        def on_complete(gt: GraphTask) -> None:
            now = int(self.env.now)
            rec = records[gt.gid]
            task = rec.task
            task.mark_completed(now)
            rec.finished_at = now
            node = rec.node
            assert node is not None
            self.rim.complete_task(task, node)
            running.pop(task.task_no, None)
            # Redispatch suspended graph tasks suitable for the freed node.
            while True:
                cand = self.scheduler.next_redispatch(node)
                if cand is None:
                    break
                gt_c = next(
                    (g for g in records.values() if g.task is cand), None
                )
                out = self.scheduler.schedule(cand, now)
                if out.result is ScheduleResult.SCHEDULED and gt_c is not None:
                    gt_c.node = out.placement.node
                    gt_c.started_at = now
                    running[cand.task_no] = gt_c.gtask
                    finish = now + out.placement.start_delay + cand.required_time
                    self.env.call_at(finish, lambda g=gt_c.gtask: on_complete(g))
                else:
                    break
            release_successors(gt, now)
            try_dispatch()

        for entry in graph.entry_tasks():
            make_ready(entry, 0)
        self.env.call_at(0, try_dispatch)
        self.env.run()

        makespan = max(
            (r.finished_at for r in records.values() if r.finished_at >= 0),
            default=0,
        )
        return GraphScheduleResult(
            makespan=makespan,
            records=records,
            critical_path=graph.critical_path_length(),
            discarded=discarded[0],
        )

    def _as_task(self, gt: GraphTask) -> Task:
        task = Task(
            task_no=gt.gid,
            required_time=gt.required_time,
            pref_config=gt.pref_config,
        )
        return task


__all__ = ["TaskGraphScheduler", "GraphScheduleResult", "upward_ranks", "GraphTaskRecord"]
