"""The paper's primary contribution (S6): partial-reconfiguration scheduling.

* :mod:`repro.core.base` — scheduler interface, placement/outcome types.
* :mod:`repro.core.scheduler` — :class:`DreamScheduler`, the four-phase
  algorithm of Fig. 5 + Alg. 1 (allocation → configuration → partial
  configuration → partial re-configuration → suspension → discard), with a
  ``partial`` switch selecting between the paper's two scenarios:
  *with partial reconfiguration* (multiple configurations per node) and
  *without* (one node – one task, the full-reconfiguration baseline).
* :mod:`repro.core.policies` — selection-criterion strategies (the §V
  best-match rule and its ablation alternatives).
"""

from repro.core.base import (
    Placement,
    PlacementKind,
    ScheduleOutcome,
    ScheduleResult,
    SchedulerStats,
)
from repro.core.policies import PlacementPolicy, SelectionCriterion
from repro.core.scheduler import DreamScheduler

__all__ = [
    "DreamScheduler",
    "Placement",
    "PlacementKind",
    "PlacementPolicy",
    "ScheduleOutcome",
    "ScheduleResult",
    "SchedulerStats",
    "SelectionCriterion",
]
