"""Placement-selection policies — §V's best-match rule and its ablations.

The paper fixes one criterion: "the best-match can be the node which
possesses the minimum AvailableArea", so larger free regions are saved for
future reconfigurations; blank and partially blank nodes are likewise chosen
with *minimum sufficient* area.  DESIGN.md calls this choice out for
ablation, so the criterion is pluggable:

* ``MIN_AREA`` — the paper's rule (default).
* ``FIRST_FIT`` — take the first feasible candidate; cheaper searches
  (stops early) but worse packing.
* ``MAX_AREA`` — worst-fit; a classic fragmentation-friendly contrast.
* ``RANDOM`` — uniform over feasible candidates (needs an RNG).

Each selector walks the relevant chain/table and charges one scheduling step
per element examined, so the ablation benches can compare both placement
quality *and* search effort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TypeVar

from repro.model.config import Configuration
from repro.model.node import ConfigTaskEntry, Node
from repro.resources.manager import ResourceInformationManager
from repro.rng import RNG

T = TypeVar("T")


class SelectionCriterion(enum.Enum):
    """How a selector ranks feasible candidates (see module docstring)."""

    MIN_AREA = "min_area"  # the paper's best-match rule
    FIRST_FIT = "first_fit"
    MAX_AREA = "max_area"
    RANDOM = "random"


@dataclass
class PlacementPolicy:
    """Criteria for each of the three candidate searches of Fig. 5."""

    idle: SelectionCriterion = SelectionCriterion.MIN_AREA
    blank: SelectionCriterion = SelectionCriterion.MIN_AREA
    partially_blank: SelectionCriterion = SelectionCriterion.MIN_AREA
    rng: Optional[RNG] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        needs_rng = SelectionCriterion.RANDOM in (self.idle, self.blank, self.partially_blank)
        if needs_rng and self.rng is None:
            raise ValueError("RANDOM criterion requires an RNG")

    @classmethod
    def paper(cls) -> "PlacementPolicy":
        """The published policy: minimum sufficient area everywhere."""
        return cls()

    @classmethod
    def first_fit(cls) -> "PlacementPolicy":
        c = SelectionCriterion.FIRST_FIT
        return cls(idle=c, blank=c, partially_blank=c)

    @classmethod
    def worst_fit(cls) -> "PlacementPolicy":
        c = SelectionCriterion.MAX_AREA
        return cls(idle=c, blank=c, partially_blank=c)

    @classmethod
    def random(cls, rng: RNG) -> "PlacementPolicy":
        c = SelectionCriterion.RANDOM
        return cls(idle=c, blank=c, partially_blank=c, rng=rng)

    # -- selectors ------------------------------------------------------------

    def select_idle_entry(
        self, rim: ResourceInformationManager, config: Configuration
    ) -> Optional[ConfigTaskEntry]:
        """Choose a direct-allocation target among idle entries of ``config``.

        The paper's MIN_AREA rule delegates to the manager's query (which
        serves it from the idle-entry index in indexed mode); the ablation
        criteria walk the chain here.
        """
        if self.idle is SelectionCriterion.MIN_AREA:
            return rim.find_best_idle_entry(config)
        return self._select(
            rim.idle_chain(config),
            rim,
            self.idle,
            feasible=lambda _e: True,
            keyfn=lambda e: rim._node_of(e).available_area,
        )

    def select_blank_node(
        self, rim: ResourceInformationManager, config: Configuration
    ) -> Optional[Node]:
        """Choose a blank node with sufficient total area."""
        if self.blank is SelectionCriterion.MIN_AREA:
            return rim.find_best_blank_node(config)
        return self._select(
            rim.blank_chain,
            rim,
            self.blank,
            feasible=lambda n: n.total_area >= config.req_area
            and config.compatible_with_node_family(n.family),
            keyfn=lambda n: n.total_area,
        )

    def select_partially_blank_node(
        self, rim: ResourceInformationManager, config: Configuration
    ) -> Optional[Node]:
        """Choose a configured node with a sufficient free region."""
        if self.partially_blank is SelectionCriterion.MIN_AREA:
            return rim.find_best_partially_blank_node(config)
        return self._select(
            (n for n in rim.nodes if not n.is_blank),
            rim,
            self.partially_blank,
            feasible=lambda n: n.available_area >= config.req_area
            and config.compatible_with_node_family(n.family),
            keyfn=lambda n: n.available_area,
        )

    # -- generic walk -------------------------------------------------------------

    def _select(
        self,
        candidates: Iterable[T],
        rim: ResourceInformationManager,
        criterion: SelectionCriterion,
        feasible: Callable[[T], bool],
        keyfn: Callable[[T], int],
    ) -> Optional[T]:
        """Walk candidates charging one scheduling step per element examined."""
        if criterion is SelectionCriterion.FIRST_FIT:
            for item in candidates:
                rim.counters.charge_scheduling()
                if feasible(item):
                    return item
            return None

        if criterion is SelectionCriterion.RANDOM:
            pool: list[T] = []
            for item in candidates:
                rim.counters.charge_scheduling()
                if feasible(item):
                    pool.append(item)
            if not pool:
                return None
            assert self.rng is not None  # enforced in __post_init__
            return self.rng.choice(pool)

        sign = 1 if criterion is SelectionCriterion.MIN_AREA else -1
        best: Optional[T] = None
        best_key: Optional[int] = None
        for item in candidates:
            rim.counters.charge_scheduling()
            if not feasible(item):
                continue
            key = sign * keyfn(item)
            if best_key is None or key < best_key:
                best, best_key = item, key
        return best


__all__ = ["PlacementPolicy", "SelectionCriterion"]
