"""The case-study scheduling algorithm — Fig. 5 and Alg. 1 of the paper.

:class:`DreamScheduler` implements the four-phase placement process:

1. **Match** — exact preferred configuration via linear search of the
   configurations list; else the closest match (minimum ``ReqArea`` among
   configurations at least as large); else the task is *discarded*.
2. **Allocation** — best idle node already holding the matched
   configuration (minimum ``AvailableArea``); zero configuration cost.
3. **Configuration** — best blank node (minimum sufficient ``TotalArea``);
   pays the configuration time.
4. **Partial configuration** *(partial mode only)* — best configured node
   with a sufficient free region (minimum sufficient ``AvailableArea``).
5. **Partial re-configuration** *(partial mode only)* — ``FindAnyIdleNode``
   (Alg. 1): the first node whose free area plus idle-entry area suffices;
   its idle entries are evicted and the region reconfigured.
6. **Suspension** — if any busy node could *ever* host the configuration,
   the task waits in the suspension queue; otherwise it is discarded.

``partial=False`` reproduces the paper's *without partial reconfiguration*
scenario: each node holds at most one configuration (one node – one task),
so phases 4–5 reduce to whole-node reconfiguration of idle nodes, which
Alg. 1 covers naturally (a full node's single idle entry is the eviction
set).  The published comparison (Figs. 6–10) is exactly these two modes run
on identical workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import (
    Placement,
    PlacementKind,
    ScheduleOutcome,
    ScheduleResult,
    SchedulerStats,
)
from repro.core.policies import PlacementPolicy
from repro.model.config import Configuration
from repro.model.node import Node
from repro.model.task import Task
from repro.resources.manager import ResourceInformationManager
from repro.resources.susqueue import SuspensionQueue
from repro.trace.events import DISCARDED, PLACED, SUSPENDED

if TYPE_CHECKING:  # pragma: no cover
    from repro.model.gpp import GppPool
    from repro.network.delays import NetworkModel
    from repro.trace.bus import TraceBus


class DreamScheduler:
    """Four-phase scheduler over a resource information manager.

    Parameters
    ----------
    rim:
        The resource information manager (node table + chains + counters).
    susqueue:
        The suspension queue; created automatically if omitted.
    partial:
        ``True`` (default) for the partial-reconfiguration scenario,
        ``False`` for the one-node-one-task baseline.
    policy:
        Candidate-selection criteria; defaults to the paper's
        minimum-sufficient-area rule.
    trace:
        Optional :class:`repro.trace.TraceBus`; emits ``Placed`` (with the
        phase that produced the placement) and ``Discarded`` events.  An
        auto-created suspension queue inherits it.
    """

    def __init__(
        self,
        rim: ResourceInformationManager,
        susqueue: Optional[SuspensionQueue] = None,
        partial: bool = True,
        policy: Optional[PlacementPolicy] = None,
        network: Optional["NetworkModel"] = None,
        gpp_pool: Optional["GppPool"] = None,
        trace: Optional["TraceBus"] = None,
    ) -> None:
        self.rim = rim
        self.trace = trace
        if susqueue is None:
            susqueue = SuspensionQueue(
                rim.counters, key_fn=self.matched_config_no, trace=trace
            )
        elif susqueue.key_fn is None:
            susqueue.key_fn = self.matched_config_no
        self.susqueue = susqueue
        self.partial = partial
        self.policy = policy if policy is not None else PlacementPolicy.paper()
        self.stats = SchedulerStats()
        # Memo for silent configuration matching: the configurations list is
        # static for a run, so a task's match never changes.
        self._match_memo: dict[int, Optional[Configuration]] = {}
        self._min_config_area = min((c.req_area for c in rim.configs), default=0)
        if network is None:
            from repro.network.delays import FixedDelayModel

            network = FixedDelayModel()
        self.network = network
        self.gpp_pool = gpp_pool

    # -- public API -----------------------------------------------------------

    def schedule(self, task: Task, now: int) -> ScheduleOutcome:
        """Attempt to place ``task``; applies all state changes on success.

        The returned outcome carries the per-task search length (Alg. 1's
        ``SL``), also accumulated on ``task.scheduling_steps``.
        """
        steps_before = self.rim.counters.scheduling_steps
        outcome = self._schedule_inner(task, now)
        steps = self.rim.counters.scheduling_steps - steps_before
        task.scheduling_steps += steps
        outcome = ScheduleOutcome(
            task=outcome.task,
            result=outcome.result,
            placement=outcome.placement,
            search_steps=steps,
        )
        self.stats.record(outcome)
        return outcome

    def next_redispatch(self, freed_node: Node) -> Optional[Task]:
        """Completion-time suspension-queue check (§IV ``TaskCompletionProc``).

        "Each time a node finishes executing a task, the suspension queue is
        checked … to determine if a suitable task is waiting in the queue
        which can be executed on the node."  Suitability is two-tier:

        1. **Exact reuse** — the earliest queued task whose matched
           configuration is one the freed node now holds idle; dispatching
           it is a zero-cost direct allocation.  This is the dominant path
           once queues are long, which is why the full-reconfiguration
           scenario performs so few reconfigurations per task (Fig. 10).
        2. **Reconfiguration fallback** — if no exact candidate exists, the
           first queued task whose matched configuration fits the freed
           node's reclaimable area (a re-configuration could host it).

        The check's simulated cost is a linear queue traversal, billed via
        :meth:`SuspensionQueue.charge_full_scan`; returns the task removed
        from the queue, or None.
        """
        if not self.susqueue:
            return None
        reclaimable = freed_node.reclaimable_area()
        if reclaimable <= 0:
            return None  # node fully busy again; nothing can be hosted
        self.susqueue.charge_full_scan()
        freed_keys = {e.config.config_no for e in freed_node.entries if e.is_idle}
        rec = self.susqueue.first_with_key(freed_keys) if freed_keys else None
        if rec is None:
            if reclaimable < self._min_config_area:
                return None  # no configuration can fit in the reclaimable region

            if self.rim.indexed:
                # The fit test depends only on the record's key (the matched
                # configuration number), so the per-key index answers it
                # without walking the queue; charging is identical to the
                # reference walk below.
                def fits_key(cno) -> bool:
                    cfg = self.rim.config_with_no(cno)
                    return cfg is not None and cfg.req_area <= reclaimable

                rec = self.susqueue.first_matching_key(fits_key)
            else:

                def fits(task: Task) -> bool:
                    cfg = self.matched_config(task)
                    return cfg is not None and cfg.req_area <= reclaimable

                # Reference fallback: linear queue walk with early exit.
                rec = self.susqueue.search(fits)
        if rec is None:
            return None
        return self.susqueue.remove(rec)

    def matched_config(self, task: Task) -> Optional[Configuration]:
        """The configuration ``task`` resolves to (exact or closest match),
        memoised and without step charging — used by queue predicates.

        Delegates to the RIM's uncharged ``peek_*`` helpers so the matching
        rule lives in exactly one place; the charged phase-0 lookups
        (:meth:`ResourceInformationManager.find_preferred_config` /
        ``find_closest_config``) resolve to the same answers.
        """
        memo = self._match_memo
        if task.task_no in memo:
            return memo[task.task_no]
        pref = task.pref_config
        found = self.rim.peek_preferred_config(pref)
        if found is None:
            found = self.rim.peek_closest_config(pref)
        memo[task.task_no] = found
        return found

    def matched_config_no(self, task: Task) -> Optional[int]:
        """Suspension-queue index key: the matched configuration number."""
        cfg = self.matched_config(task)
        return cfg.config_no if cfg is not None else None

    # -- the algorithm ------------------------------------------------------------

    def _schedule_inner(self, task: Task, now: int) -> ScheduleOutcome:
        rim = self.rim

        # Phase 0: match the configuration (exact, then closest).
        config = rim.find_preferred_config(task.pref_config)
        used_closest = False
        if config is None:
            config = rim.find_closest_config(task.pref_config)
            used_closest = True
            if config is None:
                return self._discard(task, now, reason="no_config")

        # Phase 1: allocation on an idle entry with the matched config.
        entry = self.policy.select_idle_entry(rim, config)
        if entry is not None:
            node = rim._node_of(entry)
            return self._start(
                task, now, node, entry, config,
                PlacementKind.ALLOCATION, config_time=0,
                used_closest=used_closest,
            )

        # Phase 2: configuration of a blank node.
        node = self.policy.select_blank_node(rim, config)
        if node is not None:
            new_entry = rim.configure_node(node, config, now=now)
            return self._start(
                task, now, node, new_entry, config,
                PlacementKind.CONFIGURATION, config_time=config.config_time,
                used_closest=used_closest,
            )

        if self.partial:
            # Phase 3: partial configuration of a free region.
            node = self.policy.select_partially_blank_node(rim, config)
            if node is not None:
                new_entry = rim.configure_node(node, config, now=now)
                return self._start(
                    task, now, node, new_entry, config,
                    PlacementKind.PARTIAL_CONFIGURATION,
                    config_time=config.config_time,
                    used_closest=used_closest,
                )

        # Phase 4: (partial) re-configuration via FindAnyIdleNode (Alg. 1).
        # In full mode this is whole-node reconfiguration of an idle node.
        node, evict = rim.find_any_idle_node(config, require_all_idle=not self.partial)
        if node is not None:
            evicted_area = rim.evict_entries(node, evict) if evict else 0
            new_entry = rim.configure_node(node, config, now=now)
            return self._start(
                task, now, node, new_entry, config,
                PlacementKind.PARTIAL_RECONFIGURATION,
                config_time=config.config_time,
                used_closest=used_closest,
                evicted_area=evicted_area,
            )

        # Hybrid fallback (Fig. 1): run on a free GPP core at a slowdown
        # rather than wait for reconfigurable capacity.
        if self.gpp_pool is not None:
            slot = self.gpp_pool.acquire(task)
            if slot is not None:
                from repro.model.gpp import GPP_CONFIG

                comm = self.gpp_pool.network_delay
                task.mark_started(now, GPP_CONFIG, comm_time=comm, on_gpp=True)
                placement = Placement(
                    kind=PlacementKind.GPP_OFFLOAD,
                    node=None,
                    entry=None,
                    config=GPP_CONFIG,
                    comm_time=comm,
                    used_closest_match=False,
                    gpp_slot=slot,
                    exec_time=self.gpp_pool.exec_time(task),
                )
                if self.trace is not None:
                    self.trace.emit(
                        PLACED,
                        task=task.task_no,
                        kind=PlacementKind.GPP_OFFLOAD.value,
                        node=None,
                        cfg=GPP_CONFIG.config_no,
                        ctime=0,
                        closest=False,
                    )
                return ScheduleOutcome(
                    task=task, result=ScheduleResult.SCHEDULED, placement=placement
                )

        # Last resort: suspension if some busy node could ever host it.
        if self.rim.busy_candidate_exists(config):
            if self.susqueue.add(task, now):
                # Emitted here, not inside SuspensionQueue.add: only
                # scheduler-decided suspensions are suspension *events*
                # (Table I); the failure injector's transient add/remove
                # round-trip is queue bookkeeping, not a suspension.
                if self.trace is not None:
                    self.trace.emit(
                        SUSPENDED, task=task.task_no, qlen=len(self.susqueue)
                    )
                return ScheduleOutcome(task=task, result=ScheduleResult.SUSPENDED)
            return self._rescue_or_discard(task, now, config, used_closest, "queue_full")
        return self._rescue_or_discard(task, now, config, used_closest, "no_placement")

    # -- helpers --------------------------------------------------------------------

    def _rescue_or_discard(
        self,
        task: Task,
        now: int,
        config: Configuration,
        used_closest: bool,
        reason: str,
    ) -> ScheduleOutcome:
        """Graceful degradation's final rung: a quarantined node, else discard.

        The health policy's preference order — healthy idle, then healthy
        partial, then reconfiguration — is the unmodified four-phase search
        (quarantined nodes are out of service and invisible to it); only a
        task that would otherwise be *discarded* may requisition a
        quarantined node.  The ``has_quarantined`` guard keeps the hook
        zero-cost when no fault campaign is active.
        """
        if self.rim.has_quarantined():
            node = self.rim.find_quarantined_host(config)
            if node is not None:
                self.rim.release_quarantined(node, reason="requisition")
                entry = self.rim.configure_node(node, config, now=now)
                return self._start(
                    task, now, node, entry, config,
                    PlacementKind.CONFIGURATION,
                    config_time=config.config_time,
                    used_closest=used_closest,
                )
        return self._discard(task, now, reason=reason)

    def _start(
        self,
        task: Task,
        now: int,
        node: Node,
        entry,
        config: Configuration,
        kind: PlacementKind,
        config_time: int,
        used_closest: bool,
        evicted_area: int = 0,
    ) -> ScheduleOutcome:
        # Eq. 8 semantics: t_start is the dispatch tick; t_comm and t_config
        # are added on top of (t_start − t_create) when computing the wait.
        # Execution therefore occupies [now + comm + config, + t_required].
        # With a network model attached, t_comm derives from the topology and
        # reconfiguration additionally pays the bitstream-transfer time.
        comm_time = self.network.comm_time(node, task)
        if config_time > 0:
            config_time += self.network.config_transfer_time(node, config)
        task.mark_started(now, config, comm_time=comm_time, config_time_paid=config_time)
        self.rim.assign_task(task, node, entry)
        if self.trace is not None:
            self.trace.emit(
                PLACED,
                task=task.task_no,
                kind=kind.value,
                node=node.node_no,
                cfg=config.config_no,
                ctime=config_time,
                avail=node.available_area,
                sw=self.rim.total_wasted_area(),
                closest=used_closest,
            )
        placement = Placement(
            kind=kind,
            node=node,
            entry=entry,
            config=config,
            config_time=config_time,
            comm_time=comm_time,
            evicted_area=evicted_area,
            used_closest_match=used_closest,
        )
        return ScheduleOutcome(task=task, result=ScheduleResult.SCHEDULED, placement=placement)

    def _discard(self, task: Task, now: int, reason: str = "no_placement") -> ScheduleOutcome:
        task.mark_discarded(now)
        if self.trace is not None:
            self.trace.emit(DISCARDED, task=task.task_no, reason=reason)
        return ScheduleOutcome(task=task, result=ScheduleResult.DISCARDED)


__all__ = ["DreamScheduler"]
