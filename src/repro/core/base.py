"""Scheduler interface types: placements, outcomes, statistics.

A scheduler consumes one task at a time and *applies* its decision to the
resource information manager immediately (mutating node/chain state), then
returns a :class:`ScheduleOutcome` describing what happened and what it cost.
The framework layer turns the outcome into simulation events (configuration
delay, execution, completion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.model.config import Configuration
from repro.model.node import ConfigTaskEntry, Node
from repro.model.task import Task


class PlacementKind(enum.Enum):
    """Which phase of Fig. 5 produced the placement."""

    ALLOCATION = "allocation"  # idle entry with the matched config; no bitstream
    CONFIGURATION = "configuration"  # blank node configured
    PARTIAL_CONFIGURATION = "partial_configuration"  # free region configured
    PARTIAL_RECONFIGURATION = "partial_reconfiguration"  # idle entries evicted first
    GPP_OFFLOAD = "gpp_offload"  # hybrid fallback: runs on a GPP core (Fig. 1)


class ScheduleResult(enum.Enum):
    """Terminal result of one scheduling attempt."""

    SCHEDULED = "scheduled"
    SUSPENDED = "suspended"
    DISCARDED = "discarded"


@dataclass(frozen=True)
class Placement:
    """A successful placement and its costs.

    ``config_time`` is the bitstream-loading delay the task pays before it
    starts (0 for direct allocation); ``comm_time`` is the network delay to
    reach the node (Eq. 8's ``t_comm``); ``evicted_area`` is the idle area
    reclaimed by partial re-configuration.

    GPP offloads (hybrid systems) have ``node``/``entry`` None, carry the
    acquired ``gpp_slot``, and set ``exec_time`` to the slowed execution
    duration; reconfigurable placements leave ``exec_time`` None (the task's
    own ``required_time`` applies).
    """

    kind: PlacementKind
    node: Optional[Node]
    entry: Optional[ConfigTaskEntry]
    config: Configuration
    config_time: int = 0
    comm_time: int = 0
    evicted_area: int = 0
    used_closest_match: bool = False
    gpp_slot: Optional[object] = None
    exec_time: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is PlacementKind.GPP_OFFLOAD:
            if self.gpp_slot is None or self.exec_time is None:
                raise ValueError("GPP placement requires gpp_slot and exec_time")
        elif self.node is None or self.entry is None:
            raise ValueError(f"{self.kind.value} placement requires node and entry")

    @property
    def start_delay(self) -> int:
        """Ticks between the decision and task start on the node."""
        return self.config_time + self.comm_time


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of ``schedule(task, now)``."""

    task: Task
    result: ScheduleResult
    placement: Optional[Placement] = None
    search_steps: int = 0  # the per-task SL of Alg. 1

    def __post_init__(self) -> None:
        if self.result is ScheduleResult.SCHEDULED and self.placement is None:
            raise ValueError("SCHEDULED outcome requires a placement")
        if self.result is not ScheduleResult.SCHEDULED and self.placement is not None:
            raise ValueError(f"{self.result.value} outcome must not carry a placement")


@dataclass
class SchedulerStats:
    """Aggregate scheduler statistics (feeds the Table I metrics)."""

    scheduled: int = 0
    suspended: int = 0  # suspension events (a task may suspend repeatedly)
    discarded: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    closest_match_used: int = 0
    total_config_time_paid: int = 0
    total_evicted_area: int = 0

    def record(self, outcome: ScheduleOutcome) -> None:
        """Fold one scheduling outcome into the aggregates."""
        if outcome.result is ScheduleResult.SCHEDULED:
            placement = outcome.placement
            assert placement is not None
            self.scheduled += 1
            key = placement.kind.value
            self.by_kind[key] = self.by_kind.get(key, 0) + 1
            if placement.used_closest_match:
                self.closest_match_used += 1
            self.total_config_time_paid += placement.config_time
            self.total_evicted_area += placement.evicted_area
        elif outcome.result is ScheduleResult.SUSPENDED:
            self.suspended += 1
        else:
            self.discarded += 1

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view for reports and serialisation."""
        return {
            "scheduled": self.scheduled,
            "suspended": self.suspended,
            "discarded": self.discarded,
            "by_kind": dict(self.by_kind),
            "closest_match_used": self.closest_match_used,
            "total_config_time_paid": self.total_config_time_paid,
            "total_evicted_area": self.total_evicted_area,
        }

    def restore(self, state: dict[str, object]) -> None:
        """Restore aggregates captured by :meth:`snapshot` (snapshot support)."""
        self.scheduled = int(state["scheduled"])  # type: ignore[arg-type]
        self.suspended = int(state["suspended"])  # type: ignore[arg-type]
        self.discarded = int(state["discarded"])  # type: ignore[arg-type]
        self.by_kind = dict(state["by_kind"])  # type: ignore[arg-type]
        self.closest_match_used = int(state["closest_match_used"])  # type: ignore[arg-type]
        self.total_config_time_paid = int(state["total_config_time_paid"])  # type: ignore[arg-type]
        self.total_evicted_area = int(state["total_evicted_area"])  # type: ignore[arg-type]


__all__ = [
    "Placement",
    "PlacementKind",
    "ScheduleOutcome",
    "ScheduleResult",
    "SchedulerStats",
]
