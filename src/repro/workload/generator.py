"""Synthetic resource and task generators — §III's input subsystem.

Node and configuration generation correspond to ``InitNodes`` /
``InitConfigs``; task generation to the job submission manager ("simulates
the task arrivals corresponding to a user-defined task arrival rate and
distribution function").

Each generator consumes its own derived RNG stream (see :meth:`RNG.spawn`)
so that, e.g., changing the number of tasks does not change the generated
node table — a requirement for clean full-vs-partial A/B comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.model.config import Configuration, ProcessorParams, Ptype
from repro.model.node import Node
from repro.model.task import Task
from repro.rng import RNG
from repro.workload.spec import ConfigSpec, NodeSpec, TaskSpec

# RNG sub-stream indices (stable across versions; part of the replay contract).
STREAM_NODES = 1
STREAM_CONFIGS = 2
STREAM_ARRIVALS = 3
STREAM_TASK_ATTRS = 4


def generate_nodes(spec: NodeSpec, rng: RNG) -> list[Node]:
    """Create the node table (``InitNodes``): areas drawn from the spec."""
    stream = rng.spawn(STREAM_NODES)
    nodes = []
    for i in range(spec.count):
        nodes.append(
            Node(
                node_no=i,
                total_area=max(1, spec.total_area.sample_int(stream)),
                family=spec.family,
                caps=spec.caps,
                network_delay=spec.network_delay.sample_int(stream),
            )
        )
    return nodes


def _params_for(ptype: Ptype, stream: RNG) -> ProcessorParams:
    """Plausible architectural parameters per processor type (ρ-VEX style)."""
    if ptype is Ptype.VLIW:
        return ProcessorParams(
            issue_width=stream.choice([2, 4, 8]),
            alus=stream.randint(2, 8),
            multipliers=stream.randint(1, 4),
            cluster_cores=stream.choice([1, 2, 4]),
            memory_slots=stream.randint(1, 4),
        )
    if ptype is Ptype.MULTIPLIER:
        return ProcessorParams(alus=1, multipliers=stream.randint(1, 16))
    if ptype is Ptype.SYSTOLIC_ARRAY:
        return ProcessorParams(
            alus=stream.randint(4, 64),
            cluster_cores=stream.choice([1, 2]),
            extras=(("array_dim", float(stream.choice([4, 8, 16]))),),
        )
    return ProcessorParams(
        issue_width=stream.choice([1, 2]),
        alus=stream.randint(1, 4),
        multipliers=stream.randint(0, 2),
    )


def generate_configs(spec: ConfigSpec, rng: RNG) -> list[Configuration]:
    """Create the configurations list (``InitConfigs``)."""
    stream = rng.spawn(STREAM_CONFIGS)
    configs = []
    for i in range(spec.count):
        area = max(1, spec.req_area.sample_int(stream))
        ptype = stream.choice(list(spec.ptypes))
        configs.append(
            Configuration(
                config_no=i,
                req_area=area,
                config_time=spec.config_time.sample_int(stream),
                bsize=area * spec.bsize_per_area,
                ptype=ptype,
                params=_params_for(ptype, stream),
                family=spec.family,
            )
        )
    return configs


@dataclass(frozen=True)
class TaskArrival:
    """One scheduled arrival: the task plus its absolute arrival timetick."""

    at: int
    task: Task


class TaskStream:
    """Lazy task arrival stream (the job submission manager's input).

    Iterating yields :class:`TaskArrival` records with non-decreasing
    ``at`` times.  The stream is deterministic for a given (rng seed, spec,
    configs) triple and is independent of how the consumer interleaves
    iteration with simulation.
    """

    def __init__(
        self,
        spec: TaskSpec,
        configs: Sequence[Configuration],
        rng: RNG,
        start_time: int = 0,
        first_task_no: int = 0,
    ) -> None:
        if not configs:
            raise ValueError("configs must be non-empty")
        self.spec = spec
        self.configs = list(configs)
        self._arrivals = rng.spawn(STREAM_ARRIVALS)
        self._attrs = rng.spawn(STREAM_TASK_ATTRS)
        self.start_time = start_time
        self.first_task_no = first_task_no
        # Unknown preferred configurations get config numbers beyond the
        # system list so they can never produce a spurious exact match.
        self._unknown_no = max(c.config_no for c in self.configs) + 1

    def __iter__(self) -> Iterator[TaskArrival]:
        now = self.start_time
        for i in range(self.spec.count):
            now += max(1, self.spec.arrival_interval.sample_int(self._arrivals))
            yield TaskArrival(at=now, task=self._make_task(self.first_task_no + i))

    def _make_task(self, task_no: int) -> Task:
        spec = self.spec
        if self._attrs.random() < spec.closest_match_pct:
            # Fabricate a preference absent from the system list.
            pref = Configuration(
                config_no=self._unknown_no,
                req_area=max(1, spec.unknown_req_area.sample_int(self._attrs)),
                config_time=spec.unknown_config_time.sample_int(self._attrs),
            )
            self._unknown_no += 1
        else:
            pref = self._attrs.choice(self.configs)
        return Task(
            task_no=task_no,
            required_time=max(1, spec.required_time.sample_int(self._attrs)),
            pref_config=pref,
            data=spec.data_size.sample_int(self._attrs) or None,
        )


def generate_task_stream(
    spec: TaskSpec,
    configs: Sequence[Configuration],
    rng: RNG,
    start_time: int = 0,
) -> TaskStream:
    """Convenience constructor matching the other two generators."""
    return TaskStream(spec, configs, rng, start_time=start_time)


__all__ = [
    "TaskArrival",
    "TaskStream",
    "generate_configs",
    "generate_nodes",
    "generate_task_stream",
]
