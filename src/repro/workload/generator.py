"""Synthetic resource and task generators — §III's input subsystem.

Node and configuration generation correspond to ``InitNodes`` /
``InitConfigs``; task generation to the job submission manager ("simulates
the task arrivals corresponding to a user-defined task arrival rate and
distribution function").

Each generator consumes its own derived RNG stream (see :meth:`RNG.spawn`)
so that, e.g., changing the number of tasks does not change the generated
node table — a requirement for clean full-vs-partial A/B comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.model.config import Configuration, ProcessorParams, Ptype
from repro.model.node import Node
from repro.model.task import UNSET, Task, TaskStatus
from repro.rng import RNG
from repro.rng.distributions import Constant, UniformInt
from repro.workload.spec import ConfigSpec, NodeSpec, TaskSpec

# RNG sub-stream indices (stable across versions; part of the replay contract).
STREAM_NODES = 1
STREAM_CONFIGS = 2
STREAM_ARRIVALS = 3
STREAM_TASK_ATTRS = 4

# Words per bulk refill of the fast-path stream buffers (any value yields
# the same stream; this just amortises the per-call generator overhead).
_BLOCK = 1024


def generate_nodes(spec: NodeSpec, rng: RNG) -> list[Node]:
    """Create the node table (``InitNodes``): areas drawn from the spec."""
    stream = rng.spawn(STREAM_NODES)
    nodes = []
    for i in range(spec.count):
        nodes.append(
            Node(
                node_no=i,
                total_area=max(1, spec.total_area.sample_int(stream)),
                family=spec.family,
                caps=spec.caps,
                network_delay=spec.network_delay.sample_int(stream),
            )
        )
    return nodes


def _params_for(ptype: Ptype, stream: RNG) -> ProcessorParams:
    """Plausible architectural parameters per processor type (ρ-VEX style)."""
    if ptype is Ptype.VLIW:
        return ProcessorParams(
            issue_width=stream.choice([2, 4, 8]),
            alus=stream.randint(2, 8),
            multipliers=stream.randint(1, 4),
            cluster_cores=stream.choice([1, 2, 4]),
            memory_slots=stream.randint(1, 4),
        )
    if ptype is Ptype.MULTIPLIER:
        return ProcessorParams(alus=1, multipliers=stream.randint(1, 16))
    if ptype is Ptype.SYSTOLIC_ARRAY:
        return ProcessorParams(
            alus=stream.randint(4, 64),
            cluster_cores=stream.choice([1, 2]),
            extras=(("array_dim", float(stream.choice([4, 8, 16]))),),
        )
    return ProcessorParams(
        issue_width=stream.choice([1, 2]),
        alus=stream.randint(1, 4),
        multipliers=stream.randint(0, 2),
    )


def generate_configs(spec: ConfigSpec, rng: RNG) -> list[Configuration]:
    """Create the configurations list (``InitConfigs``)."""
    stream = rng.spawn(STREAM_CONFIGS)
    configs = []
    for i in range(spec.count):
        area = max(1, spec.req_area.sample_int(stream))
        ptype = stream.choice(list(spec.ptypes))
        configs.append(
            Configuration(
                config_no=i,
                req_area=area,
                config_time=spec.config_time.sample_int(stream),
                bsize=area * spec.bsize_per_area,
                ptype=ptype,
                params=_params_for(ptype, stream),
                family=spec.family,
            )
        )
    return configs


@dataclass(frozen=True)
class TaskArrival:
    """One scheduled arrival: the task plus its absolute arrival timetick."""

    at: int
    task: Task


class TaskStream:
    """Lazy task arrival stream (the job submission manager's input).

    Iterating yields :class:`TaskArrival` records with non-decreasing
    ``at`` times.  The stream is deterministic for a given (rng seed, spec,
    configs) triple and is independent of how the consumer interleaves
    iteration with simulation.
    """

    def __init__(
        self,
        spec: TaskSpec,
        configs: Sequence[Configuration],
        rng: RNG,
        start_time: int = 0,
        first_task_no: int = 0,
    ) -> None:
        if not configs:
            raise ValueError("configs must be non-empty")
        self.spec = spec
        self.configs = list(configs)
        self._arrivals = rng.spawn(STREAM_ARRIVALS)
        self._attrs = rng.spawn(STREAM_TASK_ATTRS)
        self.start_time = start_time
        self.first_task_no = first_task_no
        # Unknown preferred configurations get config numbers beyond the
        # system list so they can never produce a spurious exact match.
        self._unknown_no = max(c.config_no for c in self.configs) + 1

    def __iter__(self) -> Iterator[TaskArrival]:
        spec = self.spec
        if (
            type(spec.arrival_interval) is UniformInt
            and type(spec.required_time) is UniformInt
            and type(spec.data_size) is Constant
            and type(spec.unknown_req_area) is UniformInt
            and type(spec.unknown_config_time) is UniformInt
        ):
            yield from self._iter_fast()
            return
        now = self.start_time
        for i in range(spec.count):
            now += max(1, spec.arrival_interval.sample_int(self._arrivals))
            yield TaskArrival(at=now, task=self._make_task(self.first_task_no + i))

    def _iter_fast(self) -> Iterator[TaskArrival]:
        """Specialised iteration for the default UniformInt/Constant spec.

        Draw-for-draw identical to the generic ``__iter__``/``_make_task``
        path — same rejection sampling, same stream interleaving — with the
        distribution/RNG call layers collapsed into local bindings.  This is
        the per-task hot path of every large sweep, shared by all backends.
        """
        spec = self.spec
        # Stream words are pulled in blocks of ``_BLOCK`` (identical bit
        # stream, consumed in the same order as the generic per-call path)
        # so the per-draw cost is a list index instead of a method call.
        # Every consumer of these two spawned streams is inlined below,
        # so nothing can observe the buffered read-ahead.
        a_fill = self._arrivals._bits.fill_uint32
        t_fill = self._attrs._bits.fill_uint32
        block = _BLOCK
        abuf: list[int] = []
        ai_ = block
        tbuf: list[int] = []
        ti = block
        configs = self.configs
        ncfg = len(configs)
        pct = spec.closest_match_pct
        arr = spec.arrival_interval
        a_low, a_span = arr.low, arr.high - arr.low + 1
        a_limit = 4294967296 - (4294967296 % a_span)
        rt = spec.required_time
        r_low, r_span = rt.low, rt.high - rt.low + 1
        r_limit = 4294967296 - (4294967296 % r_span)
        c_limit = 4294967296 - (4294967296 % ncfg)
        data = max(0, int(round(spec.data_size.value))) or None
        ua = spec.unknown_req_area
        u_low, u_span = ua.low, ua.high - ua.low + 1
        u_limit = 4294967296 - (4294967296 % u_span)
        uc = spec.unknown_config_time
        t_low, t_span = uc.low, uc.high - uc.low + 1
        t_limit = 4294967296 - (4294967296 % t_span)
        inv_2_53 = 1.0 / 9007199254740992.0
        now = self.start_time
        first = self.first_task_no
        # Tasks built from a field template instead of the dataclass
        # __init__ (its argument parsing and __post_init__ checks dominate
        # construction cost; the values below always satisfy the checks).
        task_new = Task.__new__
        ta_new = TaskArrival.__new__
        tmpl = {
            "task_no": 0,
            "required_time": 1,
            "pref_config": None,
            "data": data,
            "create_time": UNSET,
            "start_time": UNSET,
            "completion_time": UNSET,
            "comm_time": 0,
            "config_time_paid": 0,
            "assigned_config": None,
            "on_gpp": False,
            "status": TaskStatus.CREATED,
            "sus_retry": 0,
            "fault_retries": 0,
            "scheduling_steps": 0,
        }
        for i in range(spec.count):
            # arrival interval: UniformInt via rejection (RNG.randint)
            while True:
                if ai_ == block:
                    del abuf[:]
                    a_fill(abuf, block)
                    ai_ = 0
                r = abuf[ai_]
                ai_ += 1
                if r < a_limit:
                    break
            step = a_low + r % a_span
            now += step if step > 1 else 1
            # closest-match coin: uniform double from two words
            if ti > block - 2:
                if ti < block:
                    w1 = tbuf[ti]
                    del tbuf[:]
                    t_fill(tbuf, block)
                    w2 = tbuf[0]
                    ti = 1
                else:
                    del tbuf[:]
                    t_fill(tbuf, block)
                    w1 = tbuf[0]
                    w2 = tbuf[1]
                    ti = 2
            else:
                w1 = tbuf[ti]
                w2 = tbuf[ti + 1]
                ti += 2
            if ((w1 >> 6) * 134217728.0 + (w2 >> 5)) * inv_2_53 < pct:
                # fabricate an unknown preference (two more rejections)
                while True:
                    if ti == block:
                        del tbuf[:]
                        t_fill(tbuf, block)
                        ti = 0
                    r = tbuf[ti]
                    ti += 1
                    if r < u_limit:
                        break
                area = u_low + r % u_span
                while True:
                    if ti == block:
                        del tbuf[:]
                        t_fill(tbuf, block)
                        ti = 0
                    r = tbuf[ti]
                    ti += 1
                    if r < t_limit:
                        break
                pref = Configuration(
                    config_no=self._unknown_no,
                    req_area=area if area > 1 else 1,
                    config_time=t_low + r % t_span,
                )
                self._unknown_no += 1
            else:
                # uniform choice over the system configurations
                while True:
                    if ti == block:
                        del tbuf[:]
                        t_fill(tbuf, block)
                        ti = 0
                    r = tbuf[ti]
                    ti += 1
                    if r < c_limit:
                        break
                pref = configs[r % ncfg]
            # required time
            while True:
                if ti == block:
                    del tbuf[:]
                    t_fill(tbuf, block)
                    ti = 0
                r = tbuf[ti]
                ti += 1
                if r < r_limit:
                    break
            req_time = r_low + r % r_span
            d = dict(tmpl)
            d["task_no"] = first + i
            d["required_time"] = req_time if req_time > 1 else 1
            d["pref_config"] = pref
            d["_history"] = []
            task = task_new(Task)
            task.__dict__ = d
            ta = ta_new(TaskArrival)
            ta.__dict__.update({"at": now, "task": task})
            yield ta

    def _make_task(self, task_no: int) -> Task:
        spec = self.spec
        if self._attrs.random() < spec.closest_match_pct:
            # Fabricate a preference absent from the system list.
            pref = Configuration(
                config_no=self._unknown_no,
                req_area=max(1, spec.unknown_req_area.sample_int(self._attrs)),
                config_time=spec.unknown_config_time.sample_int(self._attrs),
            )
            self._unknown_no += 1
        else:
            pref = self._attrs.choice(self.configs)
        return Task(
            task_no=task_no,
            required_time=max(1, spec.required_time.sample_int(self._attrs)),
            pref_config=pref,
            data=spec.data_size.sample_int(self._attrs) or None,
        )


def generate_task_stream(
    spec: TaskSpec,
    configs: Sequence[Configuration],
    rng: RNG,
    start_time: int = 0,
) -> TaskStream:
    """Convenience constructor matching the other two generators."""
    return TaskStream(spec, configs, rng, start_time=start_time)


__all__ = [
    "TaskArrival",
    "TaskStream",
    "generate_configs",
    "generate_nodes",
    "generate_task_stream",
]
