"""Declarative specs for nodes, configurations and tasks.

Defaults reproduce Table II exactly:

====================================  =======================
Total nodes                           100 / 200 (caller picks)
Total configurations                  50
Total tasks generated                 1 000 … 100 000
Next task generation interval         uniform [1, 50] ticks
Configuration ReqArea range           uniform [200, 2000]
Node TotalArea range                  uniform [1000, 4000]
Task t_required range                 uniform [100, 100 000]
t_config range                        uniform [10, 20]
CClosestMatch percentage              15 %
====================================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.model.config import Ptype
from repro.model.family import Capability, DeviceFamily
from repro.rng.distributions import Constant, Distribution, UniformInt


@dataclass(frozen=True)
class NodeSpec:
    """User-defined resource specification for node generation (§III).

    "It can produce nodes with various reconfigurable area sizes … a user can
    specify the node upper and lower area limits."
    """

    count: int = 200
    total_area: Distribution = field(default_factory=lambda: UniformInt(1000, 4000))
    network_delay: Distribution = field(default_factory=lambda: Constant(0))
    family: Optional[DeviceFamily] = None
    caps: frozenset[Capability] = frozenset({Capability.PARTIAL_RECONFIG})

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("node count must be positive")


@dataclass(frozen=True)
class ConfigSpec:
    """Specification of the processor configurations list.

    ``bsize_per_area`` converts required area to bitstream bytes (bitstream
    size scales with region size on real devices).
    """

    count: int = 50
    req_area: Distribution = field(default_factory=lambda: UniformInt(200, 2000))
    config_time: Distribution = field(default_factory=lambda: UniformInt(10, 20))
    bsize_per_area: int = 128  # bytes of bitstream per area unit
    ptypes: Sequence[Ptype] = (
        Ptype.SOFT_CORE,
        Ptype.MULTIPLIER,
        Ptype.SYSTOLIC_ARRAY,
        Ptype.SIGNAL_PROCESSOR,
        Ptype.VLIW,
    )
    family: Optional[DeviceFamily] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("config count must be positive")
        if self.bsize_per_area < 0:
            raise ValueError("bsize_per_area must be non-negative")
        if not self.ptypes:
            raise ValueError("ptypes must be non-empty")


@dataclass(frozen=True)
class TaskSpec:
    """Application specification for the synthetic task generator (§III).

    ``closest_match_pct`` is Table II's "CClosestMatch percentage": that
    fraction of tasks prefer a configuration absent from the system list, so
    the scheduler must take the closest-match path.
    """

    count: int = 10_000
    arrival_interval: Distribution = field(default_factory=lambda: UniformInt(1, 50))
    required_time: Distribution = field(default_factory=lambda: UniformInt(100, 100_000))
    closest_match_pct: float = 0.15
    data_size: Distribution = field(default_factory=lambda: Constant(0))
    # Area range used when fabricating the unknown preferred configurations
    # of the closest-match share (same range as the system configs).
    unknown_req_area: Distribution = field(default_factory=lambda: UniformInt(200, 2000))
    unknown_config_time: Distribution = field(default_factory=lambda: UniformInt(10, 20))

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("task count must be positive")
        if not 0.0 <= self.closest_match_pct <= 1.0:
            raise ValueError("closest_match_pct must lie in [0, 1]")


__all__ = ["NodeSpec", "ConfigSpec", "TaskSpec"]
