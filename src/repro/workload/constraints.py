"""User constraints — §III's "user constraints" input module.

Constraints filter or clamp a task stream before it reaches the job
submission manager: admission windows, per-task area/time caps, and a total
count cap.  They compose: a task must satisfy every active constraint to be
admitted; rejected tasks are reported so experiments can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.workload.generator import TaskArrival


class ConstraintViolation(Exception):
    """Raised by :meth:`UserConstraints.validate` in strict mode."""


@dataclass
class UserConstraints:
    """Admission rules applied to a task stream.

    Parameters
    ----------
    max_tasks:
        Stop admitting after this many tasks.
    earliest_arrival / latest_arrival:
        Admission window on arrival timeticks.
    max_required_time:
        Reject tasks needing more execution time than this.
    max_task_area:
        Reject tasks whose preferred configuration needs more area than this
        (e.g. the largest node in the system — such tasks can never run).
    strict:
        If True, a rejected task raises instead of being skipped.
    """

    max_tasks: Optional[int] = None
    earliest_arrival: Optional[int] = None
    latest_arrival: Optional[int] = None
    max_required_time: Optional[int] = None
    max_task_area: Optional[int] = None
    strict: bool = False
    rejected: list[TaskArrival] = field(default_factory=list)

    def _reason(self, arrival: TaskArrival) -> Optional[str]:
        t = arrival.task
        if self.earliest_arrival is not None and arrival.at < self.earliest_arrival:
            return f"arrival {arrival.at} before window start {self.earliest_arrival}"
        if self.latest_arrival is not None and arrival.at > self.latest_arrival:
            return f"arrival {arrival.at} after window end {self.latest_arrival}"
        if self.max_required_time is not None and t.required_time > self.max_required_time:
            return f"required_time {t.required_time} exceeds cap {self.max_required_time}"
        if self.max_task_area is not None and t.needed_area > self.max_task_area:
            return f"needed_area {t.needed_area} exceeds cap {self.max_task_area}"
        return None

    def admits(self, arrival: TaskArrival) -> bool:
        """Check one arrival without recording it."""
        return self._reason(arrival) is None

    def validate(self, arrival: TaskArrival) -> bool:
        """Check one arrival; record (or raise, in strict mode) rejections."""
        reason = self._reason(arrival)
        if reason is None:
            return True
        if self.strict:
            raise ConstraintViolation(f"task {arrival.task.task_no}: {reason}")
        self.rejected.append(arrival)
        return False

    def apply(self, stream: Iterable[TaskArrival]) -> Iterator[TaskArrival]:
        """Filter a stream lazily, honouring ``max_tasks``."""
        admitted = 0
        for arrival in stream:
            if self.max_tasks is not None and admitted >= self.max_tasks:
                return
            if self.validate(arrival):
                admitted += 1
                yield arrival


__all__ = ["UserConstraints", "ConstraintViolation"]
