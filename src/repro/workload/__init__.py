"""Workload and resource specification — the input subsystem (S5, §III).

"It allows a user to set application specifications as well as user-defined
resource specifications.  It generates synthetic tasks … It can also support
real workloads and user constraints."

* :mod:`repro.workload.spec` — declarative specs for nodes, configurations
  and tasks, with Table II's defaults.
* :mod:`repro.workload.generator` — the synthetic generators: node tables,
  configuration lists, and the task arrival stream (including the
  closest-match share: a fraction of tasks prefer a configuration that is
  *not* in the system list).
* :mod:`repro.workload.swf` — Standard Workload Format reader/writer, the
  "real workloads" input path (SWF is the de-facto archive format for
  production cluster traces).
* :mod:`repro.workload.constraints` — user constraints applied to any task
  stream (admission windows, area/time caps).
"""

from repro.workload.constraints import ConstraintViolation, UserConstraints
from repro.workload.generator import (
    TaskStream,
    generate_configs,
    generate_nodes,
    generate_task_stream,
)
from repro.workload.spec import ConfigSpec, NodeSpec, TaskSpec
from repro.workload.swf import SwfJob, read_swf, tasks_from_swf, write_swf

__all__ = [
    "ConfigSpec",
    "ConstraintViolation",
    "NodeSpec",
    "SwfJob",
    "TaskSpec",
    "TaskStream",
    "UserConstraints",
    "generate_configs",
    "generate_nodes",
    "generate_task_stream",
    "read_swf",
    "tasks_from_swf",
    "write_swf",
]
