"""The ``dreamsim`` command-line interface.

Subcommands
-----------
``run``
    One simulation with Table II defaults; prints the Table I report and can
    write the XML report (output subsystem).
``serve``
    The same campaign as a long-lived service: windowed advancement with
    optional SWF arrival replay, periodic snapshots (``--checkpoint-every``)
    and deterministic ``--resume`` (byte-identical digest and report).
``sweep``
    Task-count sweep at one node count, both modes; prints a metric table.
``figures``
    Regenerate the paper's figures (ASCII plots + numeric tables) at reduced
    or full ``--paper-scale``.
``claims``
    Evaluate every §VI-A qualitative claim and print the scorecard.
``graph``
    Schedule a generated task graph (future-work extension) and report
    makespan vs. the critical-path bound.
``lint``
    Run dreamlint (the determinism & accounting linter) over the installed
    package or explicit paths; same flags as ``tools/dreamlint.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.asciiplot import ascii_plot, series_table
from repro.analysis.compare import check_claims, scorecard
from repro.analysis.figures import FIGURES, build_figure
from repro.analysis.paperconfig import (
    DEFAULT_SEED,
    DEFAULT_TASK_SWEEP,
    PAPER_TASK_SWEEP,
)
from repro.analysis.runner import run_sweep
from repro.framework.report import write_report_xml
from repro.lint.cli import add_lint_arguments, run_from_args as run_lint_from_args


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=DEFAULT_SEED, help="simulation seed")
    p.add_argument("--configs", type=int, default=50, help="number of configurations")


def _jobs_type(value: str) -> int:
    """``--jobs`` argument: non-negative int (0 = one worker per CPU)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid jobs value: {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}"
        )
    return jobs


def _add_jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "-j", "--jobs", type=_jobs_type, default=1, metavar="N",
        help="worker processes for the sweep engine "
        "(1 = serial, 0 = one per CPU; results are bit-identical either way)",
    )


def _resolved_backend(args: argparse.Namespace) -> str:
    """Resolve ``--backend`` (with the deprecated ``--no-indexed`` alias).

    The CLI defaults to the array backend — all three backends produce
    bit-identical results (the differential suite asserts it), so the
    fastest one is the only sensible interactive default.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        return backend
    if getattr(args, "no_indexed", False):
        return "scan"
    return "array"


def _resolved_jobs(args: argparse.Namespace) -> int:
    """Resolve ``--jobs`` (0 → CPU count), announcing the resolution."""
    from repro.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    if args.jobs == 0:
        print(f"--jobs 0 resolved to {jobs} (one worker per CPU)", file=sys.stderr)
    return jobs


def _add_cache(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="resumable on-disk result cache: completed runs persist here "
        "keyed by spec content, so a re-run (after a crash or an edit to "
        "one arm) executes only the missing specs",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (one-off override; neither reads nor writes)",
    )


def _resolved_cache(args: argparse.Namespace):
    """Build the ResultCache from ``--cache-dir``/``--no-cache`` (or None)."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None or getattr(args, "no_cache", False):
        return None
    from repro.parallel import ResultCache

    return ResultCache(cache_dir)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """The fault-injection knobs shared by ``run`` and ``serve``."""
    faults = p.add_argument_group(
        "fault injection",
        "opt-in fault campaign; any of --faults, --mtbf, --seu-rate or "
        "--burst-rate enables it and a ResilienceReport is printed after "
        "Table I",
    )
    faults.add_argument(
        "--faults", action="store_true",
        help="enable the crash process with default parameters",
    )
    faults.add_argument(
        "--mtbf", type=int, default=None, metavar="TICKS",
        help="mean ticks between node crashes (default 5000 with --faults)",
    )
    faults.add_argument(
        "--mttr", type=int, default=500, metavar="TICKS",
        help="mean node repair time (default 500)",
    )
    faults.add_argument(
        "--max-failures", type=int, default=None, metavar="N",
        help="stop injecting node-loss events after N",
    )
    faults.add_argument(
        "--seu-rate", type=int, default=None, metavar="TICKS",
        help="mean ticks between transient SEU configuration faults",
    )
    faults.add_argument(
        "--scrub-factor", type=int, default=1, metavar="K",
        help="scrub duration = config_time x K (default 1)",
    )
    faults.add_argument(
        "--burst-rate", type=int, default=None, metavar="TICKS",
        help="mean ticks between correlated failure bursts",
    )
    faults.add_argument(
        "--burst-size", type=int, default=2, metavar="K",
        help="nodes felled per burst (default 2)",
    )
    faults.add_argument(
        "--burst-group", type=int, default=8, metavar="W",
        help="power-group width: nodes n with equal n//W fail together",
    )
    faults.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="max fault interrupts per task before discard (default unbounded)",
    )
    faults.add_argument(
        "--backoff-base", type=int, default=0, metavar="TICKS",
        help="exponential-backoff base delay (0 = instant resubmit, default)",
    )
    faults.add_argument(
        "--backoff-cap", type=int, default=None, metavar="TICKS",
        help="cap on one backoff delay",
    )
    faults.add_argument(
        "--quarantine-threshold", type=int, default=None, metavar="MILLI",
        help="health score (milli-units) that quarantines a node",
    )
    faults.add_argument(
        "--probation", type=int, default=None, metavar="TICKS",
        help="quarantine hold duration",
    )
    faults.add_argument(
        "--health-half-life", type=int, default=None, metavar="TICKS",
        help="failure-score decay half-life",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault-process seed (default: workload seed + 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``dreamsim`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="dreamsim",
        description="DReAMSim reproduction: partial-reconfiguration task scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation and print Table I")
    run_p.add_argument("--nodes", type=int, default=200)
    run_p.add_argument("--tasks", type=int, default=2000)
    run_p.add_argument(
        "--mode", choices=("partial", "full"), default="partial",
        help="reconfiguration method (Table II's last row)",
    )
    run_p.add_argument("--xml", type=str, default=None, help="write XML report here")
    run_p.add_argument(
        "--config", type=str, default=None,
        help="JSON experiment file (overrides the other workload flags)",
    )
    run_p.add_argument(
        "--timeline", action="store_true",
        help="ASCII plots of busy nodes / queue length over time",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    run_p.add_argument(
        "--backend", choices=("array", "indexed", "scan"), default=None,
        help="resource-manager backend (default: array — flat-table hot "
        "loop; all three produce bit-identical results)",
    )
    run_p.add_argument(
        "--no-indexed", action="store_true",
        help="deprecated alias for --backend scan (reference linear-scan "
        "manager; same results/counters, O(n) wall-clock per query)",
    )
    run_p.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write the structured event trace as JSON lines to PATH",
    )
    run_p.add_argument(
        "--trace-digest", action="store_true",
        help="print the run's order-sensitive trace digest "
        "(identical for bit-identical runs; implies tracing)",
    )
    _add_fault_args(run_p)
    run_p.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run the campaign at N consecutive seeds (seed..seed+N-1) "
        "through the sweep engine and print one report per seed",
    )
    _add_jobs(run_p)
    _add_cache(run_p)
    _add_common(run_p)

    serve_p = sub.add_parser(
        "serve",
        help="trace-driven service mode: windowed run with checkpoint/resume",
    )
    serve_p.add_argument("--nodes", type=int, default=200)
    serve_p.add_argument("--tasks", type=int, default=2000)
    serve_p.add_argument(
        "--mode", choices=("partial", "full"), default="partial",
        help="reconfiguration method (Table II's last row)",
    )
    serve_p.add_argument(
        "--backend", choices=("array", "indexed", "scan"), default=None,
        help="resource-manager backend (default: array; snapshots are "
        "backend-neutral, so a resume may pick a different one)",
    )
    serve_p.add_argument(
        "--swf", type=str, default=None, metavar="PATH",
        help="replay arrivals from this SWF workload trace at their "
        "(scaled) submit times instead of the generated stream "
        "(implies --tasks 0)",
    )
    serve_p.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="SWF submit-time scale factor (with --swf)",
    )
    serve_p.add_argument(
        "--window", type=int, default=1000, metavar="TICKS",
        help="advance simulated time in windows of this size (default 1000)",
    )
    serve_p.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="TICKS",
        help="write a snapshot each time this much simulated time passes",
    )
    serve_p.add_argument(
        "--checkpoint-dir", type=str, default=".", metavar="DIR",
        help="directory snapshots are written to (default: current)",
    )
    serve_p.add_argument(
        "--resume", type=str, default=None, metavar="FROM",
        help="resume from this snapshot file; requires --trace pointing at "
        "the JSONL trace the original service wrote (the prefix up to the "
        "cut is verified against the snapshot's digest)",
    )
    serve_p.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="persist the event trace as JSON lines (appended on --resume)",
    )
    serve_p.add_argument(
        "--report-every", type=int, default=None, metavar="TICKS",
        help="print a mid-run Table I view each time this much simulated "
        "time passes",
    )
    _add_fault_args(serve_p)
    _add_common(serve_p)

    sweep_p = sub.add_parser("sweep", help="task-count sweep, both modes")
    sweep_p.add_argument("--nodes", type=int, default=200)
    sweep_p.add_argument(
        "--tasks", type=int, nargs="+", default=list(DEFAULT_TASK_SWEEP)
    )
    sweep_p.add_argument(
        "--metric", type=str, default="avg_waiting_time_per_task",
        help="MetricsReport attribute to tabulate",
    )
    sweep_p.add_argument(
        "--backend", choices=("array", "indexed", "scan"), default=None,
        help="resource-manager backend (default: array; results are "
        "bit-identical across backends, only wall-clock differs)",
    )
    _add_jobs(sweep_p)
    _add_cache(sweep_p)
    _add_common(sweep_p)

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument(
        "--figure", choices=sorted(FIGURES) + ["all"], default="all"
    )
    fig_p.add_argument(
        "--paper-scale", action="store_true",
        help="full Table II sweep to 100k tasks (retired as an escape "
        "hatch: the array backend makes this routine — see README "
        "'Backends'; kept as a shorthand for the full task grid)",
    )
    fig_p.add_argument(
        "--tasks", type=int, nargs="+", default=None,
        help="override the task-count sweep",
    )
    fig_p.add_argument("--plot", action="store_true", help="ASCII plots too")
    fig_p.add_argument(
        "--save-sweeps", type=str, default=None, metavar="DIR",
        help="checkpoint sweep results as JSON into DIR",
    )
    fig_p.add_argument(
        "--load-sweeps", type=str, default=None, metavar="DIR",
        help="reuse sweeps previously saved with --save-sweeps",
    )
    fig_p.add_argument(
        "--csv", type=str, default=None, metavar="DIR",
        help="write one CSV per figure into DIR",
    )
    _add_jobs(fig_p)
    _add_cache(fig_p)
    _add_common(fig_p)

    claims_p = sub.add_parser("claims", help="check every §VI-A claim")
    claims_p.add_argument(
        "--tasks", type=int, nargs="+", default=[500, 1000, 2000]
    )
    claims_p.add_argument("--nodes", type=int, nargs="+", default=[100, 200])
    _add_jobs(claims_p)
    _add_cache(claims_p)
    _add_common(claims_p)

    rep_p = sub.add_parser(
        "replicate", help="multi-seed replication with confidence intervals"
    )
    rep_p.add_argument("--nodes", type=int, default=100)
    rep_p.add_argument("--tasks", type=int, default=1000)
    rep_p.add_argument("--replications", type=int, default=5)
    rep_p.add_argument(
        "--metric", type=str, nargs="+",
        default=["avg_waiting_time_per_task", "avg_reconfig_count_per_node"],
    )
    _add_jobs(rep_p)
    _add_cache(rep_p)
    _add_common(rep_p)

    graph_p = sub.add_parser("graph", help="schedule a generated task graph")
    graph_p.add_argument(
        "--shape", choices=("layered", "pipeline", "forkjoin", "mapreduce"),
        default="layered",
    )
    graph_p.add_argument("--size", type=int, default=30, help="approximate task count")
    graph_p.add_argument("--nodes", type=int, default=20)
    graph_p.add_argument(
        "--priority", choices=("rank", "fifo"), default="rank"
    )
    _add_common(graph_p)

    lint_p = sub.add_parser(
        "lint",
        help="run dreamlint, the determinism & accounting linter",
    )
    add_lint_arguments(lint_p)

    return parser


def _print_report(report, label: str) -> None:
    print(f"== {label} ==")
    d = report.as_dict()
    placements = d.pop("placements_by_kind")
    for k, v in d.items():
        if isinstance(v, float):
            print(f"  {k:<36} {v:,.3f}")
        else:
            print(f"  {k:<36} {v}")
    if placements:
        print("  placements:")
        for kind, count in sorted(placements.items()):
            print(f"    {kind:<24} {count}")


def _print_resilience(report) -> None:
    print("== resilience ==")
    d = report.as_dict()
    by_class = {
        "failures_by_class": d.pop("failures_by_class"),
        "interrupts_by_class": d.pop("interrupts_by_class"),
    }
    for k, v in d.items():
        if isinstance(v, float):
            print(f"  {k:<36} {v:,.6f}")
        else:
            print(f"  {k:<36} {v}")
    for label, counts in by_class.items():
        if counts:
            print(f"  {label}:")
            for cls, count in sorted(counts.items()):
                print(f"    {cls:<24} {count}")


def _campaign_spec_from_args(args):
    """The :class:`FaultCampaignSpec` a ``run`` invocation describes."""
    from repro.framework.campaign import FaultCampaignSpec

    mtbf = args.mtbf
    if mtbf is None and args.faults:
        mtbf = 5000
    return FaultCampaignSpec(
        nodes=args.nodes,
        configs=args.configs,
        tasks=args.tasks,
        partial=(args.mode == "partial"),
        seed=args.seed,
        fault_seed=args.fault_seed,
        mtbf=mtbf,
        mttr=args.mttr,
        max_failures=args.max_failures,
        burst_rate=args.burst_rate,
        burst_size=args.burst_size,
        burst_group=args.burst_group,
        seu_rate=args.seu_rate,
        scrub_factor=args.scrub_factor,
        retry_budget=args.retry_budget,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        quarantine_threshold=args.quarantine_threshold,
        probation=args.probation,
        health_half_life=args.health_half_life,
    )


def _run_seed_sweep(args: argparse.Namespace) -> int:
    """``run --seeds N``: the fault-campaign sweep across consecutive seeds.

    Each seed is an independent :class:`RunSpec` executed by the parallel
    sweep engine; reports (and resilience/digests when enabled) are printed
    in seed order regardless of worker completion order.
    """
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    incompatible = [
        ("--config", args.config),
        ("--xml", args.xml),
        ("--timeline", args.timeline),
        ("--trace", args.trace),
        ("--profile", args.profile),
    ]
    bad = [flag for flag, value in incompatible if value]
    if bad:
        print(
            f"error: --seeds > 1 is incompatible with {', '.join(bad)} "
            "(per-run artifacts have no defined order across a sweep)",
            file=sys.stderr,
        )
        return 2
    from repro.metrics.merge import in_submission_order
    from repro.parallel import RunSpec, SweepExecutor

    jobs = _resolved_jobs(args)
    progress = lambda m: print(m, file=sys.stderr)  # noqa: E731
    base = RunSpec(
        campaign=_campaign_spec_from_args(args),
        backend=_resolved_backend(args),
        collect_digest=args.trace_digest,
    )
    specs = [base.with_seed(args.seed + i) for i in range(args.seeds)]
    payloads = SweepExecutor(
        jobs=jobs, on_message=progress, cache=_resolved_cache(args)
    ).run(specs)
    for payload in in_submission_order(payloads, expected=len(specs)):
        campaign = payload.spec.campaign
        label = (
            f"{args.mode} / {args.nodes} nodes / {args.tasks} tasks"
            f" / seed {campaign.seed}"
        )
        if campaign.faults_enabled:
            label += " / faults"
        _print_report(payload.report, label)
        if payload.resilience is not None:
            _print_resilience(payload.resilience)
        if payload.digest is not None:
            print(f"trace digest: {payload.digest}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``dreamsim run``: one simulation, Table I report, optional XML."""
    if args.seeds != 1:
        return _run_seed_sweep(args)
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    trace = None
    digest_sink = None
    jsonl_sink = None
    if getattr(args, "trace", None) or getattr(args, "trace_digest", False):
        from repro.trace import DigestSink, JsonlSink, TraceBus

        trace = TraceBus()
        digest_sink = DigestSink()
        trace.attach(digest_sink)
        if args.trace:
            jsonl_sink = JsonlSink(args.trace)
            trace.attach(jsonl_sink)
    injector = None
    if args.config:
        from repro.framework.expconfig import load_experiment

        cfg = load_experiment(args.config)
        result = cfg.build(trace=trace).run()
        params = cfg.describe()
        label = f"config {args.config}"
    else:
        from repro.framework.campaign import run_campaign

        spec = _campaign_spec_from_args(args)
        result, injector = run_campaign(
            spec,
            backend=_resolved_backend(args),
            trace=trace,
        )
        params = {
            "nodes": args.nodes,
            "tasks": args.tasks,
            "mode": args.mode,
            "seed": args.seed,
        }
        label = f"{args.mode} / {args.nodes} nodes / {args.tasks} tasks"
        if spec.faults_enabled:
            label += " / faults"
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(25)
        print("=== cProfile hot spots (top 25 by cumulative time) ===")
        print(buf.getvalue())
    _print_report(result.report, label)
    if injector is not None:
        _print_resilience(injector.resilience(result))
    if jsonl_sink is not None:
        jsonl_sink.close()
        print(f"trace written to {args.trace} ({trace.events_emitted} events)")
    if digest_sink is not None and getattr(args, "trace_digest", False):
        print(f"trace digest: {digest_sink.hexdigest()}")
    if args.timeline:
        for series in (result.monitor.busy_nodes, result.monitor.queue_length):
            if len(series) > 1:
                r = series.resample(64)
                print(
                    ascii_plot(
                        r.times, {series.name: r.values},
                        width=64, height=10, title=series.name,
                    )
                )
    if args.xml:
        path = write_report_xml(result.report, args.xml, params=params)
        print(f"XML report written to {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``dreamsim serve``: windowed service run with checkpoint/resume.

    Advances the simulator ``--window`` ticks at a time, optionally writing
    a versioned snapshot every ``--checkpoint-every`` simulated ticks and a
    mid-run Table I view every ``--report-every``.  ``--resume FROM`` picks
    a previous invocation up from its snapshot file: the JSONL trace it
    wrote (``--trace``) supplies the verified prefix, and the final digest
    and report come out byte-identical to the uninterrupted run.
    """
    import dataclasses
    from pathlib import Path

    from repro.service import ReplaySource, ServiceSimulator, Snapshot, SnapshotError
    from repro.trace.bus import read_jsonl

    spec = _campaign_spec_from_args(args)
    if args.swf:
        spec = dataclasses.replace(spec, tasks=0)
    backend = _resolved_backend(args)

    if args.resume:
        prefix = []
        if args.trace and Path(args.trace).exists():
            prefix = read_jsonl(args.trace)
        else:
            print(
                "error: --resume needs --trace pointing at the original "
                "service's JSONL trace (the prefix up to the cut)",
                file=sys.stderr,
            )
            return 2
        try:
            snap = Snapshot.read(args.resume)
            if snap.trace_seq is not None and len(prefix) > snap.trace_seq:
                # The old service kept running past this checkpoint before it
                # died: drop the post-cut tail and rewrite the file to just
                # the prefix so the resumed stream stays seq-contiguous.
                prefix = prefix[: snap.trace_seq]
                from repro.trace.bus import write_jsonl

                write_jsonl(args.trace, prefix)
                print(
                    f"truncated {args.trace} to the checkpoint's "
                    f"{snap.trace_seq} events"
                )
            svc = ServiceSimulator.resume(
                snap, spec, backend=backend, prefix_events=prefix,
                jsonl_path=args.trace,
            )
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"resumed from {args.resume} at t={int(svc.sim.env.now)}")
    else:
        svc = ServiceSimulator(spec, backend=backend, jsonl_path=args.trace)
    if args.swf:
        svc.source = ReplaySource.from_swf(
            args.swf, svc.sim.rim.configs, time_scale=args.time_scale
        )

    window = max(args.window, 1)
    now = int(svc.sim.env.now)
    cp_dir = Path(args.checkpoint_dir)
    next_cp = now + args.checkpoint_every if args.checkpoint_every else None
    next_view = now + args.report_every if args.report_every else None
    while True:
        now += window
        svc.advance_to(now)
        if next_view is not None and now >= next_view:
            view = svc.report_view()
            print(
                f"t={view.time}: {view.events_seen} events, "
                f"{view.report.total_completed_tasks} completed"
            )
            next_view += args.report_every
        if next_cp is not None and now >= next_cp:
            snap = svc.checkpoint()
            cp_dir.mkdir(parents=True, exist_ok=True)
            path = snap.write(cp_dir / f"snapshot-{snap.key}.json")
            print(f"checkpoint at t={now} -> {path}")
            next_cp += args.checkpoint_every
        source_alive = svc.source is not None and not svc.source.exhausted
        if svc.sim.env.pending_count == 0 and not source_alive:
            break
    result = svc.drain()
    label = (
        f"serve / {args.mode} / {spec.nodes} nodes / "
        f"{len(svc.memory)} events / seed {spec.seed}"
    )
    _print_report(result.report, label)
    if svc.injector is not None:
        _print_resilience(svc.injector.resilience(result))
    if svc.jsonl is not None:
        svc.jsonl.close()
        print(f"trace written to {args.trace} ({svc.bus.events_emitted} events)")
    print(f"trace digest: {svc.hexdigest()}")
    return 0


def cmd_replicate(args: argparse.Namespace) -> int:
    """``dreamsim replicate``: multi-seed means ± 95% CIs, both modes."""
    from repro.analysis.paperconfig import Scenario
    from repro.analysis.replicate import replicate

    seeds = [args.seed + i for i in range(args.replications)]
    jobs = _resolved_jobs(args)
    cache = _resolved_cache(args)
    if jobs != 1 or cache is not None:
        from dataclasses import replace as _replace

        from repro.analysis.runner import prefetch_scenarios

        grid = [
            _replace(
                Scenario(
                    nodes=args.nodes, tasks=args.tasks, partial=partial,
                    configs=args.configs, seed=args.seed,
                ),
                seed=s,
            )
            for partial in (True, False)
            for s in seeds
        ]
        prefetch_scenarios(
            grid, jobs=jobs, progress=lambda m: print(m, file=sys.stderr),
            cache=cache,
        )
    rows = []
    for partial in (True, False):
        sc = Scenario(
            nodes=args.nodes, tasks=args.tasks, partial=partial,
            configs=args.configs, seed=args.seed,
        )
        rep = replicate(sc, seeds, progress=lambda m: print(m, file=sys.stderr))
        rows.append((("partial" if partial else "full"), rep))
    print(
        f"{'metric':<34} {'mode':>8} {'mean':>14} {'±95% CI':>12} {'stddev':>12}"
    )
    print("-" * 84)
    for metric in args.metric:
        for mode, rep in rows:
            s = rep.summary(metric)
            print(
                f"{metric:<34} {mode:>8} {s.mean:>14,.2f} "
                f"{s.ci95_half_width:>12,.2f} {s.stddev:>12,.2f}"
            )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``dreamsim sweep``: one metric across a task-count sweep."""
    sweep = run_sweep(
        args.nodes, args.tasks, args.seed,
        progress=lambda m: print(m, file=sys.stderr),
        jobs=_resolved_jobs(args),
        backend=_resolved_backend(args),
        cache=_resolved_cache(args),
    )
    print(
        series_table(
            sweep.task_counts,
            {
                "partial": sweep.series(args.metric, partial=True),
                "full": sweep.series(args.metric, partial=False),
            },
        )
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``dreamsim figures``: regenerate paper figures, check shapes."""
    from pathlib import Path

    task_counts = args.tasks or (
        list(PAPER_TASK_SWEEP) if args.paper_scale else list(DEFAULT_TASK_SWEEP)
    )
    wanted = sorted(FIGURES) if args.figure == "all" else [args.figure]
    needed_nodes = sorted({FIGURES[f]["nodes"] for f in wanted})
    jobs = _resolved_jobs(args)
    cache = _resolved_cache(args)
    if jobs != 1 or cache is not None:
        from repro.analysis.runner import prefetch_scenarios, sweep_scenarios

        to_run = [
            n
            for n in needed_nodes
            if not (
                args.load_sweeps
                and (Path(args.load_sweeps) / f"sweep_n{n}.json").exists()
            )
        ]
        grid = [
            sc for n in to_run for sc in sweep_scenarios(n, task_counts, args.seed)
        ]
        prefetch_scenarios(
            grid, jobs=jobs, progress=lambda m: print(m, file=sys.stderr),
            cache=cache,
        )
    sweeps = {}
    for n in needed_nodes:
        loaded = False
        if args.load_sweeps:
            path = Path(args.load_sweeps) / f"sweep_n{n}.json"
            if path.exists():
                from repro.analysis.storage import load_sweep

                sweeps[n] = load_sweep(path)
                loaded = True
                print(f"loaded {path}", file=sys.stderr)
        if not loaded:
            sweeps[n] = run_sweep(
                n, task_counts, args.seed,
                progress=lambda m: print(m, file=sys.stderr),
            )
        if args.save_sweeps:
            from repro.analysis.storage import save_sweep

            out_dir = Path(args.save_sweeps)
            out_dir.mkdir(parents=True, exist_ok=True)
            save_sweep(sweeps[n], out_dir / f"sweep_n{n}.json")
    ok = True
    for fid in wanted:
        series = build_figure(fid, sweeps[FIGURES[fid]["nodes"]])
        if args.csv:
            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{fid}.csv").write_text(series.to_csv(), encoding="utf-8")
        print(f"\n=== {fid}: {series.title} ===")
        print(
            series_table(
                series.x, {"partial": series.partial, "full": series.full}
            )
        )
        problems = series.validate_shape()
        if problems:
            ok = False
            for p in problems:
                print(f"  SHAPE VIOLATION: {p}")
        else:
            print(
                f"  shape OK (mean winner ratio {series.mean_ratio():.2f}x)"
            )
        if args.plot:
            print(
                ascii_plot(
                    series.x,
                    {"partial": series.partial, "full": series.full},
                    title=series.title,
                )
            )
    return 0 if ok else 1


def cmd_claims(args: argparse.Namespace) -> int:
    """``dreamsim claims``: evaluate the §VI-A scorecard."""
    checks = check_claims(
        args.tasks,
        args.seed,
        node_counts=tuple(args.nodes),
        progress=lambda m: print(m, file=sys.stderr),
        jobs=_resolved_jobs(args),
        cache=_resolved_cache(args),
    )
    print(scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


def cmd_graph(args: argparse.Namespace) -> int:
    """``dreamsim graph``: schedule a generated task graph."""
    from repro.rng import RNG
    from repro.taskgraph import (
        TaskGraphScheduler,
        fork_join,
        layered_random,
        map_reduce,
        pipeline,
    )
    from repro.workload import ConfigSpec, NodeSpec
    from repro.workload.generator import generate_configs, generate_nodes

    rng = RNG(seed=args.seed)
    configs = generate_configs(ConfigSpec(count=args.configs), rng)
    nodes = generate_nodes(NodeSpec(count=args.nodes), rng)
    if args.shape == "pipeline":
        graph = pipeline(args.size, configs, rng)
    elif args.shape == "forkjoin":
        graph = fork_join(max(1, args.size - 2), configs, rng)
    elif args.shape == "mapreduce":
        graph = map_reduce(max(1, args.size // 2), max(1, args.size // 2), configs, rng)
    else:
        width = max(1, round(args.size**0.5))
        graph = layered_random(max(1, args.size // width), width, configs, rng)
    result = TaskGraphScheduler(nodes, configs, priority=args.priority).run(graph)
    print(f"shape={args.shape} tasks={len(graph)} edges={graph.edge_count()}")
    print(f"critical path bound : {result.critical_path}")
    print(f"makespan ({args.priority:>4})     : {result.makespan}")
    print(f"efficiency          : {result.efficiency:.3f}")
    print(f"discarded           : {result.discarded}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``dreamsim lint``: dreamlint over the installed package or paths."""
    return run_lint_from_args(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "serve": cmd_serve,
        "sweep": cmd_sweep,
        "figures": cmd_figures,
        "claims": cmd_claims,
        "graph": cmd_graph,
        "replicate": cmd_replicate,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
