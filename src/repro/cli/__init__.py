"""Command-line interface (S11): ``dreamsim`` / ``python -m repro``."""

from repro.cli.main import main

__all__ = ["main"]
