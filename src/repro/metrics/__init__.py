"""Performance metrics (S8) — Table I and Eqs. 5–10 of the paper.

* :mod:`repro.metrics.accumulators` — streaming statistics (count / mean /
  variance via Welford, min/max) and the per-task wasted-area accumulator.
* :mod:`repro.metrics.table1` — :class:`MetricsReport`, the full Table I
  metric set computed from end-of-run simulator state.
* :mod:`repro.metrics.timeseries` — time-stamped sampling used by the
  monitoring module and the figure benches.
* :mod:`repro.metrics.resilience` — :class:`ResilienceReport`, the
  fault-campaign companion to Table I, assembled from a :class:`FaultLog`
  of primitive facts shared by the live injector and trace replay.
* :mod:`repro.metrics.merge` — merge-from-payload entry points restoring
  serial order over the parallel sweep engine's worker results.
"""

from repro.metrics.accumulators import RunningStats, WastedAreaAccumulator
from repro.metrics.merge import (
    digests_in_order,
    in_submission_order,
    monitors_in_order,
    reports_in_order,
    resilience_in_order,
)
from repro.metrics.resilience import FaultLog, ResilienceReport, assemble_resilience
from repro.metrics.table1 import MetricsReport, compute_report
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "FaultLog",
    "MetricsReport",
    "ResilienceReport",
    "RunningStats",
    "TimeSeries",
    "WastedAreaAccumulator",
    "assemble_resilience",
    "compute_report",
    "digests_in_order",
    "in_submission_order",
    "monitors_in_order",
    "reports_in_order",
    "resilience_in_order",
]
