"""Merge-from-payload entry points for the parallel sweep engine.

Workers return :class:`~repro.parallel.spec.RunPayload` bundles in whatever
order the pool completes them; every figure/Table assembly in this repo is
defined over *serial* order (the order specs were submitted).  These
functions are the single place that re-establishes it: payloads are keyed
by their spec index, validated to be exactly the submitted set (a dropped
or duplicated spec is an error, never a silent truncation), and unpacked
into the column the consumer asked for.

Only ordering and unpacking happen here — no arithmetic.  All metric
arithmetic already lives in :func:`repro.metrics.table1.assemble_report`
and :func:`repro.metrics.resilience.assemble_resilience`, which the workers
ran in-process, so a merged sweep is bit-identical to a serial sweep by
construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.metrics.resilience import ResilienceReport
from repro.metrics.table1 import MetricsReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.spec import MonitorSeries, RunPayload


def in_submission_order(
    payloads: Sequence["RunPayload"], expected: Optional[int] = None
) -> list["RunPayload"]:
    """Sort payloads back into spec-submission order and validate the set.

    ``expected`` (when given) asserts the sweep lost nothing: exactly that
    many payloads, with contiguous indexes ``0..expected-1``.
    """
    ordered = sorted(payloads, key=lambda p: p.index)
    indexes = [p.index for p in ordered]
    if len(set(indexes)) != len(indexes):
        raise ValueError(f"duplicate payload indexes in merge: {indexes}")
    if expected is not None:
        if indexes != list(range(expected)):
            raise ValueError(
                f"payload set does not cover the sweep: got indexes {indexes}, "
                f"expected 0..{expected - 1}"
            )
    return ordered


def reports_in_order(
    payloads: Sequence["RunPayload"], expected: Optional[int] = None
) -> list[MetricsReport]:
    """The Table I reports, ordered as the specs were submitted."""
    return [p.report for p in in_submission_order(payloads, expected)]


def resilience_in_order(
    payloads: Sequence["RunPayload"], expected: Optional[int] = None
) -> list[Optional[ResilienceReport]]:
    """Per-run resilience reports (``None`` for fault-free specs), in order."""
    return [p.resilience for p in in_submission_order(payloads, expected)]


def digests_in_order(
    payloads: Sequence["RunPayload"], expected: Optional[int] = None
) -> list[Optional[str]]:
    """Per-run trace digests (``None`` unless the spec collected one), in order."""
    return [p.digest for p in in_submission_order(payloads, expected)]


def monitors_in_order(
    payloads: Sequence["RunPayload"], expected: Optional[int] = None
) -> list[Optional["MonitorSeries"]]:
    """Per-run monitor series bundles, in order."""
    return [p.monitor for p in in_submission_order(payloads, expected)]


__all__ = [
    "digests_in_order",
    "in_submission_order",
    "monitors_in_order",
    "reports_in_order",
    "resilience_in_order",
]
