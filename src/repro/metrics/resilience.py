"""Resilience metrics — how a run degraded under injected faults.

:class:`ResilienceReport` is the fault-campaign companion to Table I:
availability, observed MTTF/MTTR, task interrupts by fault class, retry and
backoff totals, quarantine occupancy and goodput (the completed-never-
interrupted fraction).

Bit-identical replay is achieved the same way Table I achieves it: the live
failure injector and :class:`~repro.trace.replay.TraceReplayer` both reduce
their observations to one :class:`FaultLog` of primitive integer facts, and
:func:`assemble_resilience` — the only place any float is computed — folds
that log into the report.  Identical integer aggregates therefore give
identical floats, regardless of whether the facts came from live simulator
state or from the structured event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


@dataclass(frozen=True)
class ResilienceReport:
    """Fault-campaign metrics for one simulation run."""

    availability: float  # node-averaged in-service fraction over the run
    mttf_observed: float  # mean gap between consecutive failures (system-wide)
    mttr_observed: float  # mean observed downtime per failure (clamped at end)
    failures_total: int
    failures_by_class: Mapping[str, int] = field(default_factory=dict)
    interrupts_total: int = 0
    interrupts_by_class: Mapping[str, int] = field(default_factory=dict)
    config_faults: int = 0  # transient SEUs injected
    retries_total: int = 0  # backoff re-entries granted
    backoff_delay_total: int = 0  # Σ granted backoff delays (ticks)
    retry_discards: int = 0  # tasks that exhausted their retry budget
    quarantines_total: int = 0
    quarantine_ticks: int = 0  # Σ quarantine span lengths (node-ticks, clamped)
    completed_first_try: int = 0  # completed without ever being interrupted
    total_tasks: int = 0
    goodput: float = 0.0  # completed_first_try / total_tasks

    def as_dict(self) -> dict[str, object]:
        """Flat dict for report writers and CLI printing."""
        out: dict[str, object] = {}
        for name in (
            "availability",
            "mttf_observed",
            "mttr_observed",
            "failures_total",
            "interrupts_total",
            "config_faults",
            "retries_total",
            "backoff_delay_total",
            "retry_discards",
            "quarantines_total",
            "quarantine_ticks",
            "completed_first_try",
            "total_tasks",
            "goodput",
        ):
            out[name] = getattr(self, name)
        out["failures_by_class"] = dict(self.failures_by_class)
        out["interrupts_by_class"] = dict(self.interrupts_by_class)
        return out


@dataclass
class FaultLog:
    """Primitive integer/string fault facts, identical live and replayed.

    ``failures`` and ``quarantines`` record *observed* spans: the end is the
    tick the repair/release event actually fired, or ``-1`` for a span still
    open when the workload finished (clamped to ``final_time`` during
    assembly).  All ordering is by span start, which is how both producers
    append them.
    """

    node_count: int = 0
    final_time: int = 0
    failures: list[tuple[int, str, int]] = field(default_factory=list)  # (start, cls, end|-1)
    interrupts: list[tuple[int, str]] = field(default_factory=list)  # (task_no, cls)
    config_faults: int = 0
    retries: list[tuple[int, int]] = field(default_factory=list)  # (task_no, delay)
    retry_discards: int = 0
    quarantines: list[tuple[int, int]] = field(default_factory=list)  # (start, end|-1)
    completed_first_try: int = 0
    total_tasks: int = 0


def assemble_resilience(log: FaultLog) -> ResilienceReport:
    """Fold a :class:`FaultLog` into a :class:`ResilienceReport`.

    The single shared code path for live accumulation and trace replay —
    every clamp and every float division happens here and nowhere else.
    """
    span = max(1, log.final_time)
    failures_by_class: dict[str, int] = {}
    down_ticks = 0
    mttr_sum = 0
    for start, cls, end in log.failures:
        failures_by_class[cls] = failures_by_class.get(cls, 0) + 1
        s = min(start, span)
        e = span if end < 0 else min(end, span)
        down_ticks += max(0, e - s)
        mttr_sum += max(0, e - s)
    n_fail = len(log.failures)
    if log.node_count > 0:
        availability = 1.0 - down_ticks / (span * log.node_count)
    else:
        availability = 1.0
    if n_fail >= 2:
        mttf = (log.failures[-1][0] - log.failures[0][0]) / (n_fail - 1)
    else:
        mttf = 0.0
    mttr = mttr_sum / n_fail if n_fail else 0.0

    interrupts_by_class: dict[str, int] = {}
    for _task_no, cls in log.interrupts:
        interrupts_by_class[cls] = interrupts_by_class.get(cls, 0) + 1

    q_ticks = 0
    for start, end in log.quarantines:
        s = min(start, span)
        e = span if end < 0 else min(end, span)
        q_ticks += max(0, e - s)

    total = log.total_tasks
    return ResilienceReport(
        availability=availability,
        mttf_observed=mttf,
        mttr_observed=mttr,
        failures_total=n_fail,
        failures_by_class=failures_by_class,
        interrupts_total=len(log.interrupts),
        interrupts_by_class=interrupts_by_class,
        config_faults=log.config_faults,
        retries_total=len(log.retries),
        backoff_delay_total=sum(d for _t, d in log.retries),
        retry_discards=log.retry_discards,
        quarantines_total=len(log.quarantines),
        quarantine_ticks=q_ticks,
        completed_first_try=log.completed_first_try,
        total_tasks=total,
        goodput=(log.completed_first_try / total) if total else 0.0,
    )


__all__ = ["ResilienceReport", "FaultLog", "assemble_resilience"]
