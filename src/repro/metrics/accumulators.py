"""Streaming statistical accumulators.

:class:`RunningStats` implements Welford's numerically stable one-pass
mean/variance — the HPC-simulation idiom for accumulating per-task metrics
without storing every observation.  :class:`WastedAreaAccumulator` implements
the Eq. 6/7 bookkeeping: Eq. 6 defines *total wasted area at any given time*
as the sum of ``AvailableArea`` over nodes holding at least one
configuration; this reproduction samples that quantity at every task
scheduling event and Eq. 7 divides the accumulated sum by the total number
of tasks (interpretation documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class RunningStats:
    """One-pass count/mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the running aggregates."""
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n−1 denominator)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (Chan's parallel update)."""
        out = RunningStats()
        if self.n == 0:
            out.n, out._mean, out._m2 = other.n, other._mean, other._m2
        elif other.n == 0:
            out.n, out._mean, out._m2 = self.n, self._mean, self._m2
        else:
            n = self.n + other.n
            delta = other._mean - self._mean
            out.n = n
            out._mean = self._mean + delta * other.n / n
            out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out.total = self.total + other.total
        return out

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (n/mean/stddev/min/max/total)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "total": self.total,
        }

    def export_state(self) -> dict[str, object]:
        """Exact-state export: floats as hex so restore is bit-identical."""
        return {
            "n": self.n,
            "mean": self._mean.hex(),
            "m2": self._m2.hex(),
            "min": self.min.hex(),
            "max": self.max.hex(),
            "total": self.total.hex(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Restore the exact aggregates captured by :meth:`export_state`."""
        self.n = int(state["n"])  # type: ignore[arg-type]
        self._mean = float.fromhex(state["mean"])  # type: ignore[arg-type]
        self._m2 = float.fromhex(state["m2"])  # type: ignore[arg-type]
        self.min = float.fromhex(state["min"])  # type: ignore[arg-type]
        self.max = float.fromhex(state["max"])  # type: ignore[arg-type]
        self.total = float.fromhex(state["total"])  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStats(n={self.n}, mean={self.mean:.3f})"


@dataclass
class WastedAreaAccumulator:
    """Eq. 6/7 bookkeeping: per-scheduling-event samples of total wasted area."""

    samples: RunningStats = field(default_factory=RunningStats)
    last_sample: int = 0

    def sample(self, total_wasted_area: int) -> None:
        """Record Eq. 6's instantaneous value at a scheduling event."""
        if total_wasted_area < 0:
            raise ValueError("wasted area cannot be negative")
        self.samples.add(float(total_wasted_area))
        self.last_sample = total_wasted_area

    def average_per_task(self, total_tasks: int) -> float:
        """Eq. 7 with the per-event sampling interpretation.

        Equal to the mean sampled wasted area when every generated task
        produced exactly one sample; robust to discarded tasks otherwise.
        """
        if total_tasks <= 0:
            return 0.0
        return self.samples.total / total_tasks

    @property
    def mean_sampled(self) -> float:
        return self.samples.mean


__all__ = ["RunningStats", "WastedAreaAccumulator"]
