"""Table I — the simulator's performance-metric set.

:func:`compute_report` assembles every Table I metric from end-of-run state.
Two metrics admit more than one reading of the paper's prose; both readings
are computed and the choice used for the figures is documented:

* **Average wasted area per task** (Fig. 6).  The headline value is the mean
  over scheduled tasks of the hosting node's ``AvailableArea`` right after
  placement — the area rendered unusable by that task's placement, which is
  what the §VI-A discussion describes ("when the node is reconfigured with
  the C_pref … the remaining area is wasted").  The literal Eq. 6/7 reading
  (system-wide wasted area sampled per scheduling event, divided by total
  tasks) is also reported as ``avg_system_wasted_area_per_task``.
* **Average reconfiguration time per task** (Fig. 10, Eq. 10).  Computed
  from the per-configuration reconfiguration counts; cross-checkable against
  the scheduler's summed configuration-time payments (they are equal —
  a unit test enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.base import SchedulerStats
from repro.metrics.accumulators import RunningStats
from repro.model.config import Configuration
from repro.model.node import Node
from repro.model.task import Task, TaskStatus
from repro.resources.counters import SearchCounters


@dataclass(frozen=True)
class MetricsReport:
    """All Table I metrics plus reproduction extras, for one simulation run."""

    # -- Table I ---------------------------------------------------------------
    avg_wasted_area_per_task: float  # Fig. 6 headline (placement reading)
    avg_running_time_per_task: float  # arrival → completion
    avg_reconfig_count_per_node: float  # Fig. 7
    avg_reconfig_time_per_task: float  # Fig. 10, Eq. 10
    avg_waiting_time_per_task: float  # Fig. 8, Eqs. 8–9
    avg_scheduling_steps_per_task: float  # Fig. 9a
    total_discarded_tasks: int
    total_scheduler_workload: int  # Fig. 9b
    total_used_nodes: int
    total_simulation_time: int  # Eq. 5

    # -- supplementary ------------------------------------------------------------
    avg_system_wasted_area_per_task: float  # literal Eq. 6/7 reading
    total_tasks_generated: int
    total_completed_tasks: int
    total_suspension_events: int
    total_reconfigurations: int
    total_configuration_time: int  # Eq. 10 numerator
    closest_match_tasks: int
    placements_by_kind: Mapping[str, int] = field(default_factory=dict)
    waiting_time_stats: Mapping[str, float] = field(default_factory=dict)
    running_time_stats: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flat dict for report writers (XML/CSV)."""
        out: dict[str, object] = {}
        for name in (
            "avg_wasted_area_per_task",
            "avg_running_time_per_task",
            "avg_reconfig_count_per_node",
            "avg_reconfig_time_per_task",
            "avg_waiting_time_per_task",
            "avg_scheduling_steps_per_task",
            "total_discarded_tasks",
            "total_scheduler_workload",
            "total_used_nodes",
            "total_simulation_time",
            "avg_system_wasted_area_per_task",
            "total_tasks_generated",
            "total_completed_tasks",
            "total_suspension_events",
            "total_reconfigurations",
            "total_configuration_time",
            "closest_match_tasks",
        ):
            out[name] = getattr(self, name)
        out["placements_by_kind"] = dict(self.placements_by_kind)
        return out


def total_configuration_time(
    configs: Sequence[Configuration], reconfig_count_by_config: Mapping[int, int]
) -> int:
    """Eq. 10: Σ_k ReconfigCount_k · ConfigTime_k."""
    return sum(
        reconfig_count_by_config.get(c.config_no, 0) * c.config_time for c in configs
    )


def assemble_report(
    *,
    total_tasks: int,
    waiting: RunningStats,
    running: RunningStats,
    completed: int,
    discarded: int,
    closest: int,
    total_reconfigs: int,
    config_time_total: int,
    node_count: int,
    scheduling_steps: int,
    total_workload: int,
    total_used_nodes: int,
    final_time: int,
    suspension_events: int,
    placements_by_kind: Mapping[str, int],
    placement_waste: Optional[RunningStats] = None,
    system_waste_total: float = 0.0,
) -> MetricsReport:
    """Build a :class:`MetricsReport` from primitive aggregates.

    Shared by :func:`compute_report` (live end-of-run state) and
    :class:`repro.trace.replay.TraceReplayer` (aggregates re-derived from an
    event trace), so both paths perform bit-identical arithmetic.
    """

    def per_task(x: float) -> float:
        return x / total_tasks if total_tasks else 0.0

    return MetricsReport(
        avg_wasted_area_per_task=(placement_waste.mean if placement_waste else 0.0),
        avg_running_time_per_task=running.mean,
        avg_reconfig_count_per_node=(total_reconfigs / node_count) if node_count else 0.0,
        avg_reconfig_time_per_task=per_task(config_time_total),
        avg_waiting_time_per_task=waiting.mean,
        avg_scheduling_steps_per_task=per_task(scheduling_steps),
        total_discarded_tasks=discarded,
        total_scheduler_workload=total_workload,
        total_used_nodes=total_used_nodes,
        total_simulation_time=final_time,
        avg_system_wasted_area_per_task=per_task(system_waste_total),
        total_tasks_generated=total_tasks,
        total_completed_tasks=completed,
        total_suspension_events=suspension_events,
        total_reconfigurations=total_reconfigs,
        total_configuration_time=config_time_total,
        closest_match_tasks=closest,
        placements_by_kind=dict(placements_by_kind),
        waiting_time_stats=waiting.snapshot(),
        running_time_stats=running.snapshot(),
    )


def compute_report(
    tasks: Sequence[Task],
    nodes: Sequence[Node],
    configs: Sequence[Configuration],
    counters: SearchCounters,
    scheduler_stats: SchedulerStats,
    reconfig_count_by_config: Mapping[int, int],
    final_time: int,
    total_used_nodes: int,
    placement_waste: Optional[RunningStats] = None,
    system_waste_total: float = 0.0,
) -> MetricsReport:
    """Assemble the Table I report from end-of-run state.

    ``placement_waste`` carries the per-placement hosting-node free-area
    samples; ``system_waste_total`` the Eq. 6 samples summed over scheduling
    events.
    """
    total_tasks = len(tasks)
    waiting = RunningStats()
    running = RunningStats()
    completed = 0
    discarded = 0
    closest = 0
    # Per-task hot loop of every large sweep: the waiting/running Welford
    # updates are inlined with RunningStats.add's exact operation order
    # (bit-identical aggregates), and the waiting_time / running_time /
    # used_closest_match properties are expanded over the task fields (a
    # COMPLETED task always has them set).
    completed_s = TaskStatus.COMPLETED
    discarded_s = TaskStatus.DISCARDED
    w_n = 0
    w_total = w_mean = w_m2 = 0.0
    w_min, w_max = waiting.min, waiting.max
    r_n = 0
    r_total = r_mean = r_m2 = 0.0
    r_min, r_max = running.min, running.max
    for t in tasks:
        status = t.status
        if status is completed_s:
            completed += 1
            x = t.start_time - t.create_time + t.comm_time + t.config_time_paid
            w_n += 1
            w_total += x
            delta = x - w_mean
            w_mean += delta / w_n
            w_m2 += delta * (x - w_mean)
            if x < w_min:
                w_min = x
            if x > w_max:
                w_max = x
            x = t.completion_time - t.create_time
            r_n += 1
            r_total += x
            delta = x - r_mean
            r_mean += delta / r_n
            r_m2 += delta * (x - r_mean)
            if x < r_min:
                r_min = x
            if x > r_max:
                r_max = x
            ac = t.assigned_config
            if not t.on_gpp and ac is not None and ac is not t.pref_config:
                closest += 1
        elif status is discarded_s:
            discarded += 1
    waiting.n, waiting.total = w_n, w_total
    waiting._mean, waiting._m2 = w_mean, w_m2
    waiting.min, waiting.max = w_min, w_max
    running.n, running.total = r_n, r_total
    running._mean, running._m2 = r_mean, r_m2
    running.min, running.max = r_min, r_max

    total_reconfigs = sum(n.reconfig_count for n in nodes)
    config_time_total = total_configuration_time(configs, reconfig_count_by_config)

    return assemble_report(
        total_tasks=total_tasks,
        waiting=waiting,
        running=running,
        completed=completed,
        discarded=discarded,
        closest=closest,
        total_reconfigs=total_reconfigs,
        config_time_total=config_time_total,
        node_count=len(nodes),
        scheduling_steps=counters.scheduling_steps,
        total_workload=counters.total_workload,
        total_used_nodes=total_used_nodes,
        final_time=final_time,
        suspension_events=scheduler_stats.suspended,
        placements_by_kind=scheduler_stats.by_kind,
        placement_waste=placement_waste,
        system_waste_total=system_waste_total,
    )


__all__ = ["MetricsReport", "assemble_report", "compute_report", "total_configuration_time"]
