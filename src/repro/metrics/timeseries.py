"""Time-stamped metric series for monitoring and figure generation."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class TimeSeries:
    """An append-only series of (time, value) samples, non-decreasing in time."""

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        """Append a sample; time must not precede the previous sample."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time {time} precedes last sample {self.times[-1]} in series {self.name!r}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def at(self, time: float) -> Optional[float]:
        """Last value at or before ``time`` (step interpolation)."""
        i = bisect_right(self.times, time)
        return self.values[i - 1] if i else None

    def mean(self) -> float:
        """Unweighted mean of the sampled values."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean weighted by holding time (step function integral / span)."""
        if len(self.times) < 2:
            return self.values[0] if self.values else 0.0
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return total / span if span > 0 else self.values[-1]

    def resample(self, n: int) -> "TimeSeries":
        """Step-resample onto ``n`` evenly spaced points over the span."""
        if n <= 0:
            raise ValueError("n must be positive")
        out = TimeSeries(name=f"{self.name}[resampled]")
        if not self.times:
            return out
        t0, t1 = self.times[0], self.times[-1]
        for k in range(n):
            t = t0 + (t1 - t0) * k / max(1, n - 1)
            v = self.at(t)
            out.add(t, v if v is not None else self.values[0])
        return out

    def max(self) -> float:
        """Largest sampled value (0 for an empty series)."""
        return max(self.values) if self.values else 0.0


__all__ = ["TimeSeries"]
